package nn

import (
	"encoding/json"
	"math"
	"testing"
)

func TestNARJSONRoundTrip(t *testing.T) {
	n := 200
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/14) + 3
	}
	m, err := FitNAR(xs, NARConfig{Delays: 5, Hidden: 6, Seed: 9, Train: TrainConfig{Epochs: 300}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back NAR
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PredictNext()-back.PredictNext()) > 1e-9 {
		t.Error("prediction differs after round trip")
	}
	f1 := m.Forecast(8)
	f2 := back.Forecast(8)
	for i := range f1 {
		if math.Abs(f1[i]-f2[i]) > 1e-9 {
			t.Fatalf("forecasts diverge at %d", i)
		}
	}
	m.Update(2.5)
	back.Update(2.5)
	if math.Abs(m.PredictNext()-back.PredictNext()) > 1e-9 {
		t.Error("post-update predictions diverge")
	}
}

func TestNARUnmarshalValidation(t *testing.T) {
	var m NAR
	cases := map[string]string{
		"bad json":      `{`,
		"missing net":   `{"delays":3,"scaler":{"Mean":0,"Std":1}}`,
		"delays vs in":  `{"delays":3,"net":{"In":2,"Hidden":1,"W1":[[0,0]],"B1":[0],"W2":[0],"B2":0},"scaler":{"Mean":0,"Std":1}}`,
		"weight shapes": `{"delays":2,"net":{"In":2,"Hidden":2,"W1":[[0,0]],"B1":[0,0],"W2":[0,0],"B2":0},"scaler":{"Mean":0,"Std":1}}`,
		"short tail":    `{"delays":2,"net":{"In":2,"Hidden":1,"W1":[[0.1,0.2]],"B1":[0],"W2":[0.3],"B2":0},"scaler":{"Mean":0,"Std":1},"tail":[0.5]}`,
	}
	for name, data := range cases {
		if err := json.Unmarshal([]byte(data), &m); err == nil {
			t.Errorf("%s should fail to unmarshal", name)
		}
	}
}

func TestNARUnmarshalTruncatesLongTail(t *testing.T) {
	// A tail longer than Delays (e.g. from a hand-edited snapshot) is
	// normalized to the last Delays values — the only part Predict reads.
	data := `{"delays":2,"net":{"In":2,"Hidden":1,"W1":[[0.1,0.2]],"B1":[0],"W2":[0.3],"B2":0},"scaler":{"Mean":0,"Std":1},"tail":[9,9,0.5,0.25]}`
	var m NAR
	if err := json.Unmarshal([]byte(data), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.tail) != 2 || m.tail[0] != 0.5 || m.tail[1] != 0.25 {
		t.Fatalf("tail = %v, want [0.5 0.25]", m.tail)
	}
	m.PredictNext() // must not panic
}
