package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestActivationString(t *testing.T) {
	tests := map[Activation]string{
		ActTanSigmoid:  "tan-sigmoid",
		ActLogSigmoid:  "log-sigmoid",
		ActElliott:     "elliott",
		ActLinear:      "linear",
		Activation(99): "activation(99)",
	}
	for a, want := range tests {
		if got := a.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", a, got, want)
		}
	}
}

func TestActivationShapes(t *testing.T) {
	for _, a := range []Activation{ActTanSigmoid, ActLogSigmoid, ActElliott} {
		if v := a.eval(0); math.Abs(v) > 1e-12 {
			t.Errorf("%v(0) = %v, want 0", a, v)
		}
		// Squashing: bounded in (-1, 1) and monotone.
		prev := a.eval(-10)
		for x := -9.5; x <= 10; x += 0.5 {
			v := a.eval(x)
			if v <= prev-1e-12 {
				t.Fatalf("%v not monotone at %v", a, x)
			}
			if v <= -1 || v >= 1 {
				t.Fatalf("%v(%v) = %v out of (-1,1)", a, x, v)
			}
			prev = v
		}
	}
	if ActLinear.eval(3.5) != 3.5 {
		t.Error("linear should be identity")
	}
}

// Property: derivFromOutput matches a numerical derivative of eval.
func TestActivationDerivativeProperty(t *testing.T) {
	for _, a := range []Activation{ActTanSigmoid, ActLogSigmoid, ActElliott, ActLinear} {
		a := a
		f := func(raw float64) bool {
			x := math.Mod(raw, 5)
			if math.IsNaN(x) {
				x = 0
			}
			const h = 1e-6
			num := (a.eval(x+h) - a.eval(x-h)) / (2 * h)
			ana := a.derivFromOutput(a.eval(x))
			return math.Abs(num-ana) < 1e-4
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestNetworkTrainsWithEveryActivation(t *testing.T) {
	// y = x^2 on [-2, 2]: needs a genuine nonlinearity (linear must fail).
	n := 80
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := -2 + 4*float64(i)/float64(n-1)
		xs[i] = []float64{x}
		ys[i] = x * x
	}
	mses := make(map[Activation]float64)
	for _, a := range []Activation{ActTanSigmoid, ActLogSigmoid, ActElliott, ActLinear} {
		net, err := NewNetwork(1, 8, 11)
		if err != nil {
			t.Fatal(err)
		}
		net.Act = a
		mse, err := net.Train(xs, ys, &TrainConfig{Epochs: 1500})
		if err != nil {
			t.Fatal(err)
		}
		mses[a] = mse
	}
	for _, a := range []Activation{ActTanSigmoid, ActLogSigmoid, ActElliott} {
		if mses[a] > 0.05 {
			t.Errorf("%v failed to fit x^2: MSE %v", a, mses[a])
		}
	}
	// The linear ablation cannot represent x^2 and must be much worse.
	if mses[ActLinear] < 10*mses[ActTanSigmoid] {
		t.Errorf("linear ablation suspiciously good: %v vs tanh %v", mses[ActLinear], mses[ActTanSigmoid])
	}
}

func TestNARWithElliott(t *testing.T) {
	n := 200
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	m, err := FitNAR(xs, NARConfig{Delays: 6, Hidden: 8, Act: ActElliott, Seed: 3, Train: TrainConfig{Epochs: 600}})
	if err != nil {
		t.Fatal(err)
	}
	p := m.PredictNext()
	want := math.Sin(2 * math.Pi * float64(n) / 20)
	if math.Abs(p-want) > 0.3 {
		t.Errorf("elliott NAR prediction %v, want ~%v", p, want)
	}
}
