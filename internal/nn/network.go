// Package nn implements the feed-forward neural network behind the paper's
// spatial model (§V): a single hidden layer with the tan-sigmoid transfer
// function and a linear output, trained full-batch with resilient
// backpropagation (RPROP). A nonlinear autoregressive (NAR) wrapper models
// a series as a nonlinear function of its past q values (Eq. 6), and a grid
// search tunes the number of delays and hidden nodes as the paper does.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrNoData is returned when training is attempted with no samples.
var ErrNoData = errors.New("nn: no training samples")

// Network is a 1-hidden-layer feed-forward regressor:
//
//	y = b2 + Σ_h W2[h] * tanh(b1[h] + Σ_i W1[h][i] x[i])
type Network struct {
	In, Hidden int
	// Act is the hidden-layer transfer function (zero value: tan-sigmoid,
	// the paper's default).
	Act Activation
	W1  [][]float64 // Hidden x In
	B1  []float64   // Hidden
	W2  []float64   // Hidden
	B2  float64
}

// act returns the effective activation (zero value defaults to tanh).
func (n *Network) act() Activation {
	if n.Act == 0 {
		return ActTanSigmoid
	}
	return n.Act
}

// NewNetwork allocates a network with Xavier-style random initialization
// drawn from the seeded generator.
func NewNetwork(in, hidden int, seed uint64) (*Network, error) {
	if in < 1 || hidden < 1 {
		return nil, fmt.Errorf("nn: invalid topology in=%d hidden=%d", in, hidden)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	n := &Network{
		In:     in,
		Hidden: hidden,
		W1:     make([][]float64, hidden),
		B1:     make([]float64, hidden),
		W2:     make([]float64, hidden),
	}
	scale1 := math.Sqrt(2.0 / float64(in+hidden))
	scale2 := math.Sqrt(2.0 / float64(hidden+1))
	for h := 0; h < hidden; h++ {
		n.W1[h] = make([]float64, in)
		for i := range n.W1[h] {
			n.W1[h][i] = rng.NormFloat64() * scale1
		}
		n.W2[h] = rng.NormFloat64() * scale2
	}
	return n, nil
}

// Predict evaluates the network on input x (length In; shorter inputs are
// zero-padded, longer ones truncated).
func (n *Network) Predict(x []float64) float64 {
	act := n.act()
	y := n.B2
	for h := 0; h < n.Hidden; h++ {
		a := n.B1[h]
		w := n.W1[h]
		for i := 0; i < n.In && i < len(x); i++ {
			a += w[i] * x[i]
		}
		y += n.W2[h] * act.eval(a)
	}
	return y
}

// TrainConfig controls RPROP training.
type TrainConfig struct {
	// Epochs is the number of full-batch passes. Default 300.
	Epochs int
	// TolMSE stops training early once the training MSE drops below it.
	TolMSE float64
}

func (c *TrainConfig) withDefaults() TrainConfig {
	out := TrainConfig{Epochs: 300, TolMSE: 1e-8}
	if c != nil {
		if c.Epochs > 0 {
			out.Epochs = c.Epochs
		}
		if c.TolMSE > 0 {
			out.TolMSE = c.TolMSE
		}
	}
	return out
}

// rpropState carries per-weight step sizes and previous gradients.
type rpropState struct {
	step, prev []float64
}

func newRpropState(n int) *rpropState {
	s := &rpropState{step: make([]float64, n), prev: make([]float64, n)}
	for i := range s.step {
		s.step[i] = 0.01
	}
	return s
}

const (
	rpropEtaPlus  = 1.2
	rpropEtaMinus = 0.5
	rpropStepMax  = 1.0
	rpropStepMin  = 1e-9
)

// apply performs one RPROP- update of weights given gradients, in place.
func (s *rpropState) apply(weights, grads []float64) {
	for i := range weights {
		g := grads[i]
		sign := s.prev[i] * g
		switch {
		case sign > 0:
			s.step[i] = math.Min(s.step[i]*rpropEtaPlus, rpropStepMax)
		case sign < 0:
			s.step[i] = math.Max(s.step[i]*rpropEtaMinus, rpropStepMin)
			g = 0 // RPROP-: skip update after sign change
		}
		if g > 0 {
			weights[i] -= s.step[i]
		} else if g < 0 {
			weights[i] += s.step[i]
		}
		s.prev[i] = g
	}
}

// Train fits the network to (xs, ys) with full-batch RPROP and returns the
// final training MSE.
func (n *Network) Train(xs [][]float64, ys []float64, cfg *TrainConfig) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrNoData
	}
	c := cfg.withDefaults()
	nw := n.Hidden*n.In + n.Hidden + n.Hidden + 1 // W1, B1, W2, B2
	state := newRpropState(nw)
	weights := make([]float64, nw)
	grads := make([]float64, nw)
	n.flatten(weights)
	var mse float64
	for epoch := 0; epoch < c.Epochs; epoch++ {
		n.unflatten(weights)
		mse = n.gradients(xs, ys, grads)
		if mse < c.TolMSE {
			break
		}
		state.apply(weights, grads)
	}
	n.unflatten(weights)
	return mse, nil
}

func (n *Network) flatten(out []float64) {
	k := 0
	for h := 0; h < n.Hidden; h++ {
		copy(out[k:], n.W1[h])
		k += n.In
	}
	copy(out[k:], n.B1)
	k += n.Hidden
	copy(out[k:], n.W2)
	k += n.Hidden
	out[k] = n.B2
}

func (n *Network) unflatten(in []float64) {
	k := 0
	for h := 0; h < n.Hidden; h++ {
		copy(n.W1[h], in[k:k+n.In])
		k += n.In
	}
	copy(n.B1, in[k:k+n.Hidden])
	k += n.Hidden
	copy(n.W2, in[k:k+n.Hidden])
	k += n.Hidden
	n.B2 = in[k]
}

// gradients computes the full-batch MSE gradient into grads (same layout
// as flatten) and returns the MSE.
func (n *Network) gradients(xs [][]float64, ys []float64, grads []float64) float64 {
	for i := range grads {
		grads[i] = 0
	}
	act := n.act()
	hiddenAct := make([]float64, n.Hidden)
	var sse float64
	for s, x := range xs {
		// Forward.
		y := n.B2
		for h := 0; h < n.Hidden; h++ {
			a := n.B1[h]
			w := n.W1[h]
			for i := 0; i < n.In && i < len(x); i++ {
				a += w[i] * x[i]
			}
			hiddenAct[h] = act.eval(a)
			y += n.W2[h] * hiddenAct[h]
		}
		err := y - ys[s]
		sse += err * err
		// Backward. dL/dy = 2*err/N; fold the 2/N constant in at the end
		// by scaling err here (RPROP only uses gradient signs anyway, but
		// keep magnitudes meaningful for the returned MSE bookkeeping).
		k := 0
		for h := 0; h < n.Hidden; h++ {
			dAct := act.derivFromOutput(hiddenAct[h])
			dA := err * n.W2[h] * dAct
			for i := 0; i < n.In; i++ {
				xi := 0.0
				if i < len(x) {
					xi = x[i]
				}
				grads[k+i] += dA * xi
			}
			k += n.In
		}
		for h := 0; h < n.Hidden; h++ {
			dAct := act.derivFromOutput(hiddenAct[h])
			grads[k+h] += err * n.W2[h] * dAct
		}
		k += n.Hidden
		for h := 0; h < n.Hidden; h++ {
			grads[k+h] += err * hiddenAct[h]
		}
		k += n.Hidden
		grads[k] += err
	}
	nSamples := float64(len(xs))
	for i := range grads {
		grads[i] *= 2 / nSamples
	}
	return sse / nSamples
}
