package nn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/timeseries"
)

// NAR is a nonlinear autoregressive model (Eq. 6 of the paper):
//
//	x_{t+1} = f(x_t, x_{t-1}, ..., x_{t-q+1}) + eps
//
// where f is a 1-hidden-layer tan-sigmoid network. Inputs and outputs are
// standardized internally; predictions are returned on the original scale.
type NAR struct {
	Delays int
	net    *Network
	scaler *timeseries.Scaler
	tail   []float64 // last Delays observations, standardized
}

// NARConfig configures NAR training.
type NARConfig struct {
	Delays int        // number of past values fed to the network (q). Default 4.
	Hidden int        // hidden nodes. Default 6.
	Act    Activation // hidden transfer function. Default tan-sigmoid.
	Seed   uint64
	Train  TrainConfig
}

func (c NARConfig) withDefaults() NARConfig {
	if c.Delays < 1 {
		c.Delays = 4
	}
	if c.Hidden < 1 {
		c.Hidden = 6
	}
	return c
}

// FitNAR trains a NAR model on the series xs.
func FitNAR(xs []float64, cfg NARConfig) (*NAR, error) {
	cfg = cfg.withDefaults()
	if len(xs) < cfg.Delays+2 {
		return nil, errors.New("nn: series too short for NAR delays")
	}
	scaler := timeseries.FitScaler(xs)
	z := scaler.Transform(xs)
	rows, ys, err := timeseries.LagMatrix(z, cfg.Delays)
	if err != nil {
		return nil, err
	}
	net, err := NewNetwork(cfg.Delays, cfg.Hidden, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	net.Act = cfg.Act
	if _, err := net.Train(rows, ys, &cfg.Train); err != nil {
		return nil, err
	}
	m := &NAR{Delays: cfg.Delays, net: net, scaler: scaler}
	m.tail = append(m.tail, z[len(z)-cfg.Delays:]...)
	return m, nil
}

// HiddenNodes returns the width of the network's hidden layer (the other
// half of the grid-searched topology next to Delays). Serving-layer
// registries expose it as a model descriptor.
func (m *NAR) HiddenNodes() int {
	if m.net == nil {
		return 0
	}
	return m.net.Hidden
}

// PredictNext returns the one-step-ahead forecast on the original scale.
func (m *NAR) PredictNext() float64 {
	x := m.lagInput()
	return m.scaler.Invert(m.net.Predict(x))
}

// Forecast returns h-step-ahead forecasts by feeding predictions back as
// inputs.
func (m *NAR) Forecast(h int) []float64 {
	tail := append([]float64(nil), m.tail...)
	out := make([]float64, h)
	for s := 0; s < h; s++ {
		x := lagFromTail(tail, m.Delays)
		z := m.net.Predict(x)
		out[s] = m.scaler.Invert(z)
		tail = append(tail, z)
	}
	return out
}

// Update appends an observed value (original scale) to the model state for
// walk-forward evaluation. Coefficients are not re-estimated.
func (m *NAR) Update(x float64) {
	m.tail = append(m.tail, m.scaler.Apply(x))
	if len(m.tail) > m.Delays {
		m.tail = m.tail[len(m.tail)-m.Delays:]
	}
}

func (m *NAR) lagInput() []float64 {
	return lagFromTail(m.tail, m.Delays)
}

// lagFromTail builds the network input [x_t, x_{t-1}, ...] from the last
// Delays entries of tail (most recent first). The tail must hold at least
// delays values: FitNAR seeds it with exactly Delays observations and
// Update/Forecast only grow it, so a shorter tail means corrupted state.
// Silently zero-padding here would feed the network standardized zeros —
// i.e. phantom mean-valued observations — and skew every forecast, so the
// invariant is enforced loudly instead.
func lagFromTail(tail []float64, delays int) []float64 {
	if len(tail) < delays {
		panic(fmt.Sprintf("nn: NAR tail has %d values, need %d delays", len(tail), delays))
	}
	x := make([]float64, delays)
	for j := 0; j < delays; j++ {
		x[j] = tail[len(tail)-1-j]
	}
	return x
}

// GridSearchNAR tunes the number of delays and hidden nodes by validation
// MSE on the final portion of the series (the paper tunes both per dataset
// with a grid search, §V-A). It returns the model refitted on the full
// series with the winning configuration.
func GridSearchNAR(xs []float64, delays, hidden []int, seed uint64, train TrainConfig) (*NAR, error) {
	cfg, err := selectNARConfig(xs, delays, hidden, seed, train)
	if err != nil {
		return nil, err
	}
	return FitNAR(xs, cfg)
}

// selectNARConfig runs the delays×hidden grid and returns the winning
// configuration. Every candidate is fitted on the parallel worker pool —
// each fit is seeded per-config and therefore deterministic regardless of
// scheduling — and the winner is reduced from the validation MSEs in grid
// order (delays outer, hidden inner) with a strict comparison, so the
// parallel search picks exactly the configuration the serial loop would.
func selectNARConfig(xs []float64, delays, hidden []int, seed uint64, train TrainConfig) (NARConfig, error) {
	if len(delays) == 0 {
		delays = []int{2, 4, 8}
	}
	if len(hidden) == 0 {
		hidden = []int{4, 8}
	}
	trainPart, valPart := timeseries.SplitFrac(xs, 0.8)
	grid := make([]NARConfig, 0, len(delays)*len(hidden))
	for _, d := range delays {
		for _, h := range hidden {
			grid = append(grid, NARConfig{Delays: d, Hidden: h, Seed: seed, Train: train})
		}
	}
	// Infeasible configurations score +Inf rather than erroring, so Map
	// never fails here.
	mses, _ := parallel.Map(len(grid), 0, func(i int) (float64, error) {
		m, err := FitNAR(trainPart, grid[i])
		if err != nil {
			return math.Inf(1), nil
		}
		return walkForwardMSE(m, valPart), nil
	})
	bestMSE := math.Inf(1)
	best := -1
	for i, mse := range mses {
		if mse < bestMSE {
			bestMSE = mse
			best = i
		}
	}
	if best < 0 {
		return NARConfig{}, errors.New("nn: grid search found no feasible configuration")
	}
	return grid[best], nil
}

func walkForwardMSE(m *NAR, test []float64) float64 {
	if len(test) == 0 {
		return math.Inf(1)
	}
	var sse float64
	for _, x := range test {
		p := m.PredictNext()
		d := p - x
		sse += d * d
		m.Update(x)
	}
	return sse / float64(len(test))
}
