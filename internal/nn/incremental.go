package nn

import (
	"errors"

	"repro/internal/timeseries"
)

// ErrDrift is returned by WarmRefit when the frozen network's one-step
// errors over the new observations degrade past the caller's threshold —
// the signal that the topology/weights from the previous generation no
// longer describe the process and a full grid-searched refit is due.
var ErrDrift = errors.New("nn: new observations drifted past threshold")

// Clone returns a deep copy of the network; weights share no memory with
// the receiver.
func (n *Network) Clone() *Network {
	if n == nil {
		return nil
	}
	c := &Network{
		In:     n.In,
		Hidden: n.Hidden,
		Act:    n.Act,
		W1:     make([][]float64, n.Hidden),
		B1:     append([]float64(nil), n.B1...),
		W2:     append([]float64(nil), n.W2...),
		B2:     n.B2,
	}
	for h, row := range n.W1 {
		c.W1[h] = append([]float64(nil), row...)
	}
	return c
}

// Clone returns a deep copy of the NAR model (network weights, scaler, and
// walk-forward tail). Incremental refits clone the previous generation
// before warm re-training so the published model stays immutable under
// concurrent readers.
func (m *NAR) Clone() *NAR {
	if m == nil {
		return nil
	}
	c := &NAR{
		Delays: m.Delays,
		net:    m.net.Clone(),
		tail:   append([]float64(nil), m.tail...),
	}
	if m.scaler != nil {
		s := *m.scaler
		c.scaler = &s
	}
	return c
}

// WarmRefit folds newly observed values (original scale) into a copy of
// the model: it keeps the grid-searched topology and scaler from the
// previous generation, builds lag rows only for the new observations —
// O(len(xs)) instead of O(window) — and re-trains the network for a few
// warm-started epochs from the previous weights.
//
// Before training it runs the drift diagnostic on the frozen weights: if
// the mean squared one-step error over the new rows (standardized scale)
// exceeds maxRatio — measured against the unit variance of the
// standardized training series — the previous generation has stopped
// describing the process and ErrDrift is returned, signalling the caller
// to fall back to a full refit. A maxRatio <= 0 disables the diagnostic.
//
// The receiver is never mutated.
func (m *NAR) WarmRefit(xs []float64, epochs int, maxRatio float64) (*NAR, error) {
	c := m.Clone()
	if len(xs) == 0 {
		return c, nil
	}
	if epochs <= 0 {
		epochs = 40
	}
	// The walk-forward tail holds the Delays standardized values preceding
	// the new observations, so the extended series yields exactly one lag
	// row per new value.
	ext := append(append([]float64(nil), c.tail...), c.scaler.Transform(xs)...)
	rows, ys, err := timeseries.LagMatrix(ext, c.Delays)
	if err != nil {
		return nil, err
	}
	if maxRatio > 0 {
		var sse float64
		for i, row := range rows {
			d := c.net.Predict(row) - ys[i]
			sse += d * d
		}
		if sse/float64(len(rows)) > maxRatio {
			return nil, ErrDrift
		}
	}
	if _, err := c.net.Train(rows, ys, &TrainConfig{Epochs: epochs}); err != nil {
		return nil, err
	}
	c.tail = ext[len(ext)-c.Delays:]
	return c, nil
}
