package nn

import (
	"fmt"
	"math"
)

// Activation selects the hidden-layer transfer function. The paper (§V-A)
// considers the three functions most commonly used for multilayer
// networks — Log-Sigmoid, Tan-Sigmoid, and Linear — and picks the default
// Tan-Sigmoid; it cites Elliott (1993) for a cheaper sigmoid-shaped
// alternative, which is also provided.
type Activation int

// Supported transfer functions.
const (
	// ActTanSigmoid is tanh, the paper's choice.
	ActTanSigmoid Activation = iota + 1
	// ActLogSigmoid is the logistic function 1/(1+e^-x), rescaled to
	// (-1, 1) so weight initialization behaves comparably.
	ActLogSigmoid
	// ActElliott is Elliott's x/(1+|x|) squashing function.
	ActElliott
	// ActLinear is the identity (no hidden nonlinearity; the network
	// degenerates to an affine model — useful as an ablation).
	ActLinear
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActTanSigmoid:
		return "tan-sigmoid"
	case ActLogSigmoid:
		return "log-sigmoid"
	case ActElliott:
		return "elliott"
	case ActLinear:
		return "linear"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// eval returns f(x).
func (a Activation) eval(x float64) float64 {
	switch a {
	case ActLogSigmoid:
		return 2/(1+math.Exp(-x)) - 1
	case ActElliott:
		return x / (1 + math.Abs(x))
	case ActLinear:
		return x
	default:
		return math.Tanh(x)
	}
}

// derivFromOutput returns f'(x) expressed via y = f(x) (all supported
// functions admit this form, which avoids recomputing the pre-activation).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActLogSigmoid:
		// y = 2s-1 with s = sigmoid(x); s'(x) = s(1-s) and dy/dx = 2s'.
		s := (y + 1) / 2
		return 2 * s * (1 - s)
	case ActElliott:
		// y = x/(1+|x|)  =>  f'(x) = 1/(1+|x|)^2 = (1-|y|)^2.
		d := 1 - math.Abs(y)
		return d * d
	case ActLinear:
		return 1
	default:
		return 1 - y*y
	}
}
