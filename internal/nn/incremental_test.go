package nn

import (
	"errors"
	"math"
	"testing"
)

// sineSeries is a smooth nonlinear-but-predictable series the NAR can
// learn well.
func sineSeries(n int, phase float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + 20*math.Sin(phase+float64(i)/3)
	}
	return xs
}

func TestNetworkCloneIsDeep(t *testing.T) {
	n, err := NewNetwork(3, 4, 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	c := n.Clone()
	x := []float64{0.3, -0.2, 0.9}
	want := n.Predict(x)
	c.W1[0][0] = 99
	c.B1[0] = 99
	c.W2[0] = 99
	c.B2 = 99
	if got := n.Predict(x); got != want {
		t.Fatalf("original prediction changed after clone mutation: %v != %v", got, want)
	}
	if (*Network)(nil).Clone() != nil {
		t.Fatalf("nil Clone should stay nil")
	}
}

func TestIncrementalWarmRefitTracksSeries(t *testing.T) {
	xs := sineSeries(120, 0)
	m, err := FitNAR(xs[:100], NARConfig{Delays: 4, Hidden: 6, Seed: 3, Train: TrainConfig{Epochs: 200}})
	if err != nil {
		t.Fatalf("FitNAR: %v", err)
	}
	before := m.PredictNext()
	warm, err := m.WarmRefit(xs[100:], 40, 4)
	if err != nil {
		t.Fatalf("WarmRefit flagged a continuation of the same series: %v", err)
	}
	// The receiver must be untouched (published generations are immutable).
	if got := m.PredictNext(); got != before {
		t.Fatalf("WarmRefit mutated the receiver: %v != %v", got, before)
	}
	// The warm model advanced its walk-forward state and still tracks the
	// series: its one-step forecast should be close to the true next value.
	next := 50 + 20*math.Sin(float64(120)/3)
	if d := math.Abs(warm.PredictNext() - next); d > 10 {
		t.Fatalf("warm forecast %v too far from truth %v (|d|=%v)", warm.PredictNext(), next, d)
	}
}

func TestIncrementalWarmRefitFlagsRegimeChange(t *testing.T) {
	m, err := FitNAR(sineSeries(100, 0), NARConfig{Delays: 4, Hidden: 6, Seed: 3, Train: TrainConfig{Epochs: 200}})
	if err != nil {
		t.Fatalf("FitNAR: %v", err)
	}
	// A level shift far outside the fitted regime (series lives in
	// [30, 70]) must trip the frozen-weights diagnostic.
	shifted := make([]float64, 16)
	for i := range shifted {
		shifted[i] = 500 + 10*float64(i%3)
	}
	if _, err := m.WarmRefit(shifted, 40, 4); !errors.Is(err, ErrDrift) {
		t.Fatalf("WarmRefit on a regime change: got %v, want ErrDrift", err)
	}
}
