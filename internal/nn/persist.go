package nn

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/timeseries"
)

// narJSON is the serialized form of a fitted NAR model.
type narJSON struct {
	Delays int                `json:"delays"`
	Net    *Network           `json:"net"`
	Scaler *timeseries.Scaler `json:"scaler"`
	Tail   []float64          `json:"tail"`
}

// MarshalJSON serializes the fitted NAR (network weights, scaler, and the
// walk-forward tail).
func (m *NAR) MarshalJSON() ([]byte, error) {
	return json.Marshal(narJSON{
		Delays: m.Delays,
		Net:    m.net,
		Scaler: m.scaler,
		Tail:   append([]float64(nil), m.tail...),
	})
}

// UnmarshalJSON restores a NAR serialized by MarshalJSON.
func (m *NAR) UnmarshalJSON(data []byte) error {
	var j narJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("nn: unmarshal NAR: %w", err)
	}
	if j.Net == nil || j.Scaler == nil {
		return errors.New("nn: unmarshal NAR: missing network or scaler")
	}
	if j.Delays < 1 || j.Net.In != j.Delays {
		return fmt.Errorf("nn: unmarshal NAR: delays %d disagree with network inputs %d", j.Delays, j.Net.In)
	}
	if err := j.Net.validate(); err != nil {
		return fmt.Errorf("nn: unmarshal NAR: %w", err)
	}
	// The tail is the network's entire input window: fewer than Delays
	// values would make the first PredictNext panic (lagFromTail enforces
	// the invariant), so reject truncated state at the boundary instead.
	if len(j.Tail) < j.Delays {
		return fmt.Errorf("nn: unmarshal NAR: tail has %d values, need %d delays", len(j.Tail), j.Delays)
	}
	m.Delays = j.Delays
	m.net = j.Net
	m.scaler = j.Scaler
	m.tail = j.Tail[len(j.Tail)-j.Delays:]
	return nil
}

// validate checks that a deserialized network's weight shapes agree with
// its declared topology.
func (n *Network) validate() error {
	if n.In < 1 || n.Hidden < 1 {
		return fmt.Errorf("nn: invalid topology in=%d hidden=%d", n.In, n.Hidden)
	}
	if len(n.W1) != n.Hidden || len(n.B1) != n.Hidden || len(n.W2) != n.Hidden {
		return errors.New("nn: weight shape mismatch")
	}
	for _, row := range n.W1 {
		if len(row) != n.In {
			return errors.New("nn: W1 row shape mismatch")
		}
	}
	return nil
}
