package cluster

// Cluster observability tests (DESIGN.md §14): cross-node trace
// propagation over every routing path, the /statusz fleet fan-out, and
// the peer-reachability gauge. Traces are read back over real HTTP via
// the node's merged /debug/traces endpoint — spans finish in handler
// defers after the response is written, so every read polls until the
// expected tree materializes.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/obs"
)

// getTraces fetches one node's /debug/traces with an optional raw query
// string ("trace=<id>").
func getTraces(t testing.TB, url, query string) obs.TracesSnapshot {
	t.Helper()
	uri := url + "/debug/traces"
	if query != "" {
		uri += "?" + query
	}
	resp, err := http.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/debug/traces: HTTP %d: %s", resp.StatusCode, b)
	}
	var snap obs.TracesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// findTree returns the first root (depth-0) tree satisfying pred.
func findTree(trees []obs.SpanJSON, pred func(*obs.SpanJSON) bool) *obs.SpanJSON {
	for i := range trees {
		if pred(&trees[i]) {
			return &trees[i]
		}
	}
	return nil
}

// findChild returns the first direct child satisfying pred.
func findChild(tree *obs.SpanJSON, pred func(*obs.SpanJSON) bool) *obs.SpanJSON {
	for i := range tree.Children {
		if pred(&tree.Children[i]) {
			return &tree.Children[i]
		}
	}
	return nil
}

// pollTraces re-reads /debug/traces until pred finds its tree. Spans
// land in the ring from handler defers that run after the client has
// its response, so the first read can race the recording.
func pollTraces(t testing.TB, url, query string, pred func(*obs.SpanJSON) bool) *obs.SpanJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := getTraces(t, url, query)
		if tree := findTree(snap.Traces, pred); tree != nil {
			return tree
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(snap.Traces)
			t.Fatalf("no matching trace at %s?%s; ring: %s", url, query, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertOneTrace walks a tree and requires every span to carry traceID.
func assertOneTrace(t testing.TB, tree *obs.SpanJSON, traceID string) {
	t.Helper()
	if tree.TraceID != traceID {
		t.Fatalf("span %q has trace_id %s, want %s", tree.Name, tree.TraceID, traceID)
	}
	for i := range tree.Children {
		assertOneTrace(t, &tree.Children[i], traceID)
	}
}

// TestClusterTraceSplitProxy drives one mixed-owner binary batch through
// n1's split-proxy and requires the merged /debug/traces?trace= view to
// render a single tree: the proxy root on n1, its local ingest child on
// n1, and the forwarded partition's ingest on n2 parented under the
// forward child — all sharing one trace ID.
func TestClusterTraceSplitProxy(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, noRefit(clusterServeConfig()))
	ring := nodes[0].node.Ring()
	byOwner := splitByOwner(ring, testTargets)
	if len(byOwner["n1"]) == 0 || len(byOwner["n2"]) == 0 {
		t.Fatalf("degenerate split %v", byOwner)
	}

	recs := mkClusterAttacks(testTargets, 2)
	res := postBatch(t, nodes[0].srv.Client(), nodes[0].srv.URL, encodeBinaryBatch(t, recs))
	if res.Ingested != len(recs) {
		t.Fatalf("ingested %d of %d", res.Ingested, len(recs))
	}

	isSplit := func(s *obs.SpanJSON) bool {
		return s.Name == "proxy" && s.Attrs["mode"] == "split"
	}
	root := pollTraces(t, nodes[0].srv.URL, "", isSplit)
	if root.TraceID == "" {
		t.Fatal("split root has no trace_id")
	}
	traceID := root.TraceID

	// The merged query must stitch n2's remote ingest into the same tree.
	merged := pollTraces(t, nodes[0].srv.URL, "trace="+traceID, func(s *obs.SpanJSON) bool {
		if !isSplit(s) {
			return false
		}
		fwd := findChild(s, func(c *obs.SpanJSON) bool { return c.Name == "forward" })
		return fwd != nil && findChild(fwd, func(c *obs.SpanJSON) bool { return c.Name == "ingest" }) != nil
	})
	assertOneTrace(t, merged, traceID)
	if merged.Node != "n1" {
		t.Fatalf("split root stamped node %q, want n1", merged.Node)
	}

	fwd := findChild(merged, func(c *obs.SpanJSON) bool { return c.Name == "forward" })
	if fwd.Attrs["peer"] != "n2" {
		t.Fatalf("forward child peer = %q, want n2: %+v", fwd.Attrs["peer"], fwd)
	}
	remote := findChild(fwd, func(c *obs.SpanJSON) bool { return c.Name == "ingest" })
	if remote.Node != "n2" {
		t.Fatalf("remote ingest stamped node %q, want n2", remote.Node)
	}
	if remote.ParentID != fwd.SpanID {
		t.Fatalf("remote ingest parent %s, want forward span %s", remote.ParentID, fwd.SpanID)
	}
	local := findChild(merged, func(c *obs.SpanJSON) bool { return c.Name == "ingest" })
	if local == nil {
		t.Fatalf("no local ingest child under the split root: %+v", merged)
	}
	if local.Node != "n1" || local.ParentID != merged.SpanID {
		t.Fatalf("local ingest node=%q parent=%s, want n1 under root %s",
			local.Node, local.ParentID, merged.SpanID)
	}
	// The same stitched view must be reachable from the *other* node too.
	fromPeer := pollTraces(t, nodes[1].srv.URL, "trace="+traceID, func(s *obs.SpanJSON) bool {
		return isSplit(s) && len(s.Children) >= 2
	})
	assertOneTrace(t, fromPeer, traceID)
}

// TestClusterTraceRedirect posts a single-remote-owner batch to the
// non-owner under redirect routing. The 307 Location carries ?xtrace=
// (Go clients replay the original headers, so a response header could
// never propagate), and the owner's ingest must parent under the
// redirecting node's proxy span.
func TestClusterTraceRedirect(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteRedirect, noRefit(clusterServeConfig()))
	ring := nodes[0].node.Ring()
	var target astopo.AS
	for _, as := range testTargets {
		if ring.Owner(as).ID == "n2" {
			target = as
			break
		}
	}
	if target == 0 {
		t.Fatal("no test target owned by n2")
	}

	recs := mkClusterAttacks([]astopo.AS{target}, 2)
	res := postBatch(t, nodes[0].srv.Client(), nodes[0].srv.URL, encodeBinaryBatch(t, recs))
	if res.Ingested != len(recs) {
		t.Fatalf("ingested %d of %d across the redirect", res.Ingested, len(recs))
	}

	isRedirect := func(s *obs.SpanJSON) bool {
		return s.Name == "proxy" && s.Attrs["mode"] == "redirect" && s.Attrs["peer"] == "n2"
	}
	root := pollTraces(t, nodes[0].srv.URL, "", isRedirect)
	traceID := root.TraceID

	merged := pollTraces(t, nodes[0].srv.URL, "trace="+traceID, func(s *obs.SpanJSON) bool {
		return isRedirect(s) && findChild(s, func(c *obs.SpanJSON) bool { return c.Name == "ingest" }) != nil
	})
	assertOneTrace(t, merged, traceID)
	ing := findChild(merged, func(c *obs.SpanJSON) bool { return c.Name == "ingest" })
	if ing.Node != "n2" {
		t.Fatalf("redirected ingest stamped node %q, want n2", ing.Node)
	}
	if ing.ParentID != merged.SpanID {
		t.Fatalf("redirected ingest parent %s, want redirect span %s", ing.ParentID, merged.SpanID)
	}
}

// TestClusterTraceReplication checks the replication pass renders as one
// cross-node tree: the follower's poll root with the owner's ship span
// stitched under it. Empty polls must stay out of the ring entirely.
func TestClusterTraceReplication(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, noRefit(clusterServeConfig()))
	recs := mkClusterAttacks(testTargets, 2)
	postBatch(t, nodes[0].srv.Client(), nodes[0].srv.URL, encodeBinaryBatch(t, recs))
	replicateToZero(t, nodes)

	isPoll := func(s *obs.SpanJSON) bool {
		return s.Name == "replicate" && s.Attrs["side"] == "poll" &&
			s.Attrs["peer"] == "n1" && s.Attrs["segments"] != "0"
	}
	root := pollTraces(t, nodes[1].srv.URL, "", isPoll)
	traceID := root.TraceID

	merged := pollTraces(t, nodes[1].srv.URL, "trace="+traceID, func(s *obs.SpanJSON) bool {
		return isPoll(s) && findChild(s, func(c *obs.SpanJSON) bool {
			return c.Name == "replicate" && c.Attrs["side"] == "ship"
		}) != nil
	})
	assertOneTrace(t, merged, traceID)
	ship := findChild(merged, func(c *obs.SpanJSON) bool { return c.Attrs["side"] == "ship" })
	if ship.Node != "n1" {
		t.Fatalf("ship span stamped node %q, want n1", ship.Node)
	}
	if ship.ParentID != merged.SpanID {
		t.Fatalf("ship span parent %s, want poll span %s", ship.ParentID, merged.SpanID)
	}

	// Heartbeat suppression: drive several empty passes, then require the
	// ring to hold no zero-segment replication spans.
	for i := 0; i < 3; i++ {
		replicateToZero(t, nodes)
	}
	for _, tn := range nodes {
		snap := getTraces(t, tn.srv.URL, "stage=replicate")
		for i := range snap.Traces {
			s := &snap.Traces[i]
			if s.Name == "replicate" && s.Attrs["segments"] == "0" {
				t.Fatalf("empty replication pass leaked into %s's trace ring: %+v",
					tn.node.Self().ID, s)
			}
		}
	}
}

// TestClusterStatuszFanout exercises the fleet aggregation: both peers
// answer with their local sections; killing one degrades only its own
// section (error field set, status absent) and flips the
// ddosd_cluster_peer_up gauge to 0.
func TestClusterStatuszFanout(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, noRefit(clusterServeConfig()))
	recs := mkClusterAttacks(testTargets, 2)
	postBatch(t, nodes[0].srv.Client(), nodes[0].srv.URL, encodeBinaryBatch(t, recs))
	replicateToZero(t, nodes)

	getFleet := func() FleetStatus {
		t.Helper()
		resp, err := http.Get(nodes[0].srv.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var fs FleetStatus
		if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	fs := getFleet()
	if fs.Node != "n1" || fs.Members != 2 || len(fs.Peers) != 2 {
		t.Fatalf("fleet status = %+v", fs)
	}
	for _, p := range fs.Peers {
		if p.Error != "" {
			t.Fatalf("peer %s errored with both nodes up: %s", p.ID, p.Error)
		}
		var st struct {
			Health json.RawMessage `json:"health"`
			Build  struct {
				GoVersion string `json:"go_version"`
			} `json:"build"`
		}
		if err := json.Unmarshal(p.Status, &st); err != nil {
			t.Fatalf("peer %s status unparsable: %v", p.ID, err)
		}
		if len(st.Health) == 0 || st.Build.GoVersion == "" {
			t.Fatalf("peer %s status missing health/build sections: %s", p.ID, p.Status)
		}
	}
	if !fs.Peers[0].Self || fs.Peers[0].ID != "n1" || fs.Peers[1].ID != "n2" {
		t.Fatalf("peer ordering/self marking = %+v", fs.Peers)
	}
	if len(fs.Replication) != 1 || fs.Replication[0].Peer != "n2" {
		t.Fatalf("replication section = %+v", fs.Replication)
	}

	// ?local=1 (what the fan-out itself sends) answers the node section
	// only — no recursive fan-out.
	resp, err := http.Get(nodes[0].srv.URL + "/statusz?local=1")
	if err != nil {
		t.Fatal(err)
	}
	local, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var node struct {
		Health json.RawMessage `json:"health"`
		Peers  json.RawMessage `json:"peers"`
	}
	if err := json.Unmarshal(local, &node); err != nil {
		t.Fatal(err)
	}
	if len(node.Health) == 0 || node.Peers != nil {
		t.Fatalf("?local=1 answered a fleet document: %s", local)
	}

	// One peer dies: its section degrades, everything else still answers.
	nodes[1].srv.Close()
	fs = getFleet()
	var dead *PeerStatus
	for i := range fs.Peers {
		if fs.Peers[i].ID == "n2" {
			dead = &fs.Peers[i]
		}
	}
	if dead == nil || dead.Error == "" || dead.Status != nil {
		t.Fatalf("dead peer section = %+v, want error set and no status", dead)
	}
	if self := findPeer(fs.Peers, "n1"); self == nil || self.Error != "" || self.Status == nil {
		t.Fatalf("surviving node's own section degraded: %+v", self)
	}

	mresp, err := http.Get(nodes[0].srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), `ddosd_cluster_peer_up{peer="n2"} 0`) {
		t.Fatalf("metrics missing peer_up 0 for the dead peer:\n%s", grepLines(string(mb), "peer_up"))
	}
}

func findPeer(peers []PeerStatus, id string) *PeerStatus {
	for i := range peers {
		if peers[i].ID == id {
			return &peers[i]
		}
	}
	return nil
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
