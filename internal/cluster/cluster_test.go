package cluster

// Multi-node integration tests: each test boots a full in-process
// cluster — per node a real serve.Service, its own WAL directory, a
// cluster Node, and an httptest listener serving the routed handler —
// and drives it over real HTTP. Replication is driven synchronously via
// Node.Replicate (the poll loop stays off) so every test is
// deterministic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/wal"
)

func clusterServeConfig() serve.Config {
	return serve.Config{
		Shards:      4,
		Window:      64,
		MinWindow:   6,
		MinSTWindow: 1 << 20,
		RefitEvery:  4,
		QueueDepth:  64,
		BatchSize:   8,
		Seed:        7,
		Temporal:    core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 10},
		},
	}
}

// noRefit pushes the refit trigger out of reach so store state stays a
// pure function of the applied records.
func noRefit(cfg serve.Config) serve.Config {
	cfg.RefitEvery = 1 << 30
	return cfg
}

type testNode struct {
	svc  *serve.Service
	wal  *wal.WAL
	node *Node
	srv  *httptest.Server
}

// startTestCluster boots n nodes named n1..nN. Listeners come up first
// (member URLs must be known before the ring is built), each parked on a
// swappable handler that 503s until the node behind it exists.
func startTestCluster(t testing.TB, n int, route string, cfg serve.Config) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	handlers := make([]*atomic.Pointer[http.Handler], n)
	peers := make([]Member, n)
	for i := range nodes {
		p := new(atomic.Pointer[http.Handler])
		handlers[i] = p
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := p.Load()
			if h == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		peers[i] = Member{ID: fmt.Sprintf("n%d", i+1), URL: srv.URL}
		nodes[i] = &testNode{srv: srv}
	}
	for i := range nodes {
		svc := serve.New(cfg)
		t.Cleanup(svc.Close)
		w, err := wal.Open(wal.Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		svc.AttachWAL(w, nil)
		node, err := NewNode(svc, w, Config{Self: peers[i].ID, Peers: peers, Route: route})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		h := node.Handler(svc.Handler())
		handlers[i].Store(&h)
		nodes[i].svc, nodes[i].wal, nodes[i].node = svc, w, node
	}
	return nodes
}

// mkClusterAttacks builds n chronological attacks per target across the
// given targets, round-robin interleaved so every batch mixes owners.
func mkClusterAttacks(targets []astopo.AS, perTarget int) []trace.Attack {
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	var out []trace.Attack
	id := 0
	for i := 0; i < perTarget; i++ {
		for _, as := range targets {
			id++
			out = append(out, trace.Attack{
				ID:          id,
				Family:      "DirtJumper",
				Start:       t0.Add(time.Duration(i) * 3 * time.Hour),
				DurationSec: float64(600 + 60*(i%5)),
				TargetIP:    astopo.IPv4(uint32(as)<<8 | uint32(i)),
				TargetAS:    as,
				Bots:        make([]astopo.IPv4, 3+i%5),
			})
		}
	}
	return out
}

func encodeBinaryBatch(t testing.TB, recs []trace.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := trace.NewBatchEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// postBatch sends one binary batch with a redirect-capable client
// (bytes.Reader bodies replay across 307) and returns the merged result.
func postBatch(t testing.TB, client *http.Client, url string, body []byte) serve.IngestResult {
	t.Helper()
	resp, err := client.Post(url+"/ingest", trace.BatchContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/ingest: HTTP %d: %s", resp.StatusCode, b)
	}
	var res serve.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// storeImage serializes a node's store restricted to targets the keep
// filter admits, since-refit zeroed (it moves with refit timing, and the
// replica intentionally lags it).
func storeImage(t testing.TB, svc *serve.Service, keep func(astopo.AS) bool) []byte {
	t.Helper()
	cp := svc.Store().Checkpoint()
	kept := cp[:0]
	for i := range cp {
		if keep == nil || keep(cp[i].AS) {
			c := cp[i]
			c.SinceRefit = 0
			kept = append(kept, c)
		}
	}
	buf, err := json.Marshal(kept)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// replicateToZero drives synchronous replication passes on every node
// until all report zero lag.
func replicateToZero(t testing.TB, nodes []*testNode) {
	t.Helper()
	for pass := 0; pass < 10; pass++ {
		lag := 0
		for _, tn := range nodes {
			lag += tn.node.Replicate()
		}
		if lag == 0 {
			return
		}
	}
	t.Fatal("replication did not converge to zero lag")
}

var testTargets = []astopo.AS{64512, 64513, 64514, 64515, 64516, 64517, 64518, 64519}

// splitByOwner partitions targets between the two nodes of a 2-node ring.
func splitByOwner(ring *Ring, targets []astopo.AS) map[string][]astopo.AS {
	out := make(map[string][]astopo.AS)
	for _, as := range targets {
		o := ring.Owner(as)
		out[o.ID] = append(out[o.ID], as)
	}
	return out
}

// TestClusterReplicationEquivalence is the tentpole data-plane check:
// drive mixed-owner batches through one node's router, tail the sealed
// WAL segments both ways, and require every follower's replica of a
// partition to be byte-identical to the owner's store for it.
func TestClusterReplicationEquivalence(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, noRefit(clusterServeConfig()))
	ring := nodes[0].node.Ring()
	byOwner := splitByOwner(ring, testTargets)
	if len(byOwner["n1"]) == 0 || len(byOwner["n2"]) == 0 {
		t.Fatalf("degenerate split %v: pick targets that land on both nodes", byOwner)
	}

	recs := mkClusterAttacks(testTargets, 12)
	client := nodes[0].srv.Client()
	total := 0
	for i := 0; i < len(recs); i += 16 {
		end := min(i+16, len(recs))
		res := postBatch(t, client, nodes[0].srv.URL, encodeBinaryBatch(t, recs[i:end]))
		total += res.Ingested
	}
	if total != len(recs) {
		t.Fatalf("ingested %d of %d records", total, len(recs))
	}
	replicateToZero(t, nodes)

	for i, tn := range nodes {
		peer := nodes[1-i]
		owned := func(as astopo.AS) bool { return ring.Owner(as).ID == tn.node.Self().ID }
		ownerImg := storeImage(t, tn.svc, owned)
		replicaImg := storeImage(t, peer.svc, owned)
		if len(ownerImg) <= 2 {
			t.Fatalf("node %s owns nothing", tn.node.Self().ID)
		}
		if !bytes.Equal(ownerImg, replicaImg) {
			t.Errorf("follower of %s diverged from owner:\nowner   %s\nreplica %s",
				tn.node.Self().ID, ownerImg, replicaImg)
		}
	}

	// The sealed log is idempotent: a second full pass must change nothing
	// (every frame deduplicates).
	before := storeImage(t, nodes[1].svc, nil)
	replicateToZero(t, nodes)
	if got := storeImage(t, nodes[1].svc, nil); !bytes.Equal(before, got) {
		t.Error("re-running replication changed the store; shipped frames are not idempotent")
	}
}

// TestClusterCrossRouteEquivalence pins the acceptance criterion that
// routing mode is invisible to state: the same record stream via
// split-proxy, via 307 redirects, and directly on the owners must leave
// every node with an identical store checkpoint.
func TestClusterCrossRouteEquivalence(t *testing.T) {
	recs := mkClusterAttacks(testTargets, 12)
	images := make(map[string][2][]byte)

	for _, mode := range []string{"proxy", "redirect", "direct"} {
		route := RouteProxy
		if mode == "redirect" {
			route = RouteRedirect
		}
		nodes := startTestCluster(t, 2, route, noRefit(clusterServeConfig()))
		ring := nodes[0].node.Ring()
		var redirects atomic.Int64
		client := &http.Client{
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				redirects.Add(1)
				return nil
			},
		}
		switch mode {
		case "proxy":
			// Mixed-owner batches through one front node.
			for i := 0; i < len(recs); i += 16 {
				end := min(i+16, len(recs))
				postBatch(t, client, nodes[0].srv.URL, encodeBinaryBatch(t, recs[i:end]))
			}
		case "redirect", "direct":
			// Single-owner batches; redirect posts each to the non-owner so
			// every request bounces, direct posts straight to the owner.
			byOwner := make(map[string][]trace.Attack)
			for _, a := range recs {
				id := ring.Owner(a.TargetAS).ID
				byOwner[id] = append(byOwner[id], a)
			}
			for i, tn := range nodes {
				part := byOwner[tn.node.Self().ID]
				url := tn.srv.URL
				if mode == "redirect" {
					url = nodes[1-i].srv.URL
				}
				for j := 0; j < len(part); j += 16 {
					end := min(j+16, len(part))
					postBatch(t, client, url, encodeBinaryBatch(t, part[j:end]))
				}
			}
		}
		if mode == "redirect" && redirects.Load() == 0 {
			t.Fatal("redirect deployment issued no 307s")
		}
		if mode != "redirect" && redirects.Load() != 0 {
			t.Fatalf("%s deployment unexpectedly redirected %d times", mode, redirects.Load())
		}
		images[mode] = [2][]byte{
			storeImage(t, nodes[0].svc, nil),
			storeImage(t, nodes[1].svc, nil),
		}
	}

	for _, mode := range []string{"proxy", "redirect"} {
		for i := range images[mode] {
			if !bytes.Equal(images[mode][i], images["direct"][i]) {
				t.Errorf("node n%d diverges between %s and direct routing", i+1, mode)
			}
		}
	}
}

// TestClusterFailover is the takeover story: load flows through the
// non-owner, replication catches up, the owner dies without ceremony,
// the survivor is promoted over HTTP — and it must hold every acked
// record of the dead node's partition and keep serving /forecast for it.
func TestClusterFailover(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, clusterServeConfig())
	oldRing := nodes[0].node.Ring()
	byOwner := splitByOwner(oldRing, testTargets)
	if len(byOwner["n1"]) == 0 || len(byOwner["n2"]) == 0 {
		t.Fatalf("degenerate split %v", byOwner)
	}

	recs := mkClusterAttacks(testTargets, 12)
	client := nodes[1].srv.Client()
	acked := 0
	for i := 0; i < len(recs); i += 16 {
		end := min(i+16, len(recs))
		res := postBatch(t, client, nodes[1].srv.URL, encodeBinaryBatch(t, recs[i:end]))
		acked += res.Ingested
	}
	if acked != len(recs) {
		t.Fatalf("acked %d of %d records", acked, len(recs))
	}
	// Sync point: all sealed segments applied before the kill (async
	// shipping cannot promise mid-flight records; acked-and-replicated is
	// the contract smoke verifies too).
	replicateToZero(t, nodes)

	dead, survivor := nodes[0], nodes[1]
	deadOwned := func(as astopo.AS) bool { return oldRing.Owner(as).ID == "n1" }
	want := storeImage(t, dead.svc, deadOwned)

	// kill -9 equivalent: the listener vanishes, nothing checkpoints.
	dead.srv.Close()

	resp, err := http.Post(survivor.srv.URL+"/cluster/promote?dead=n1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: HTTP %d", resp.StatusCode)
	}
	if got := survivor.node.Ring().Size(); got != 1 {
		t.Fatalf("ring size after promotion = %d, want 1", got)
	}
	if survivor.node.Ring().Epoch() == oldRing.Epoch() {
		t.Fatal("ring epoch did not change on promotion")
	}

	// Zero loss: the survivor's replica of the dead partition is
	// byte-identical to what the dead node acked.
	if got := storeImage(t, survivor.svc, deadOwned); !bytes.Equal(got, want) {
		t.Fatalf("promoted follower lost acked records:\nwant %s\ngot  %s", want, got)
	}

	// Forecast continuity: every target the dead node owned now serves
	// from the survivor, locally (a proxy attempt would 502 — the owner is
	// gone).
	for _, as := range byOwner["n1"] {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(fmt.Sprintf("%s/forecast?target=%d", survivor.srv.URL, as))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("forecast for AS%d: HTTP %d after promotion: %s", as, resp.StatusCode, body)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// New ingest for a formerly dead-owned target lands locally.
	extra := mkClusterAttacks(byOwner["n1"][:1], 1)
	extra[0].ID = 1 << 20
	res := postBatch(t, client, survivor.srv.URL, encodeBinaryBatch(t, extra))
	if res.Ingested != 1 {
		t.Fatalf("post-failover ingest = %+v", res)
	}
}

// TestClusterHealthzShowsCluster checks the /healthz surface satellites
// rely on: node identity, ring epoch, and per-peer replication state.
func TestClusterHealthzShowsCluster(t *testing.T) {
	nodes := startTestCluster(t, 2, RouteProxy, noRefit(clusterServeConfig()))
	replicateToZero(t, nodes)
	resp, err := http.Get(nodes[0].srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Cluster *Status `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatal("/healthz has no cluster section")
	}
	if h.Cluster.Node != "n1" || h.Cluster.Members != 2 {
		t.Fatalf("cluster section = %+v", h.Cluster)
	}
	if h.Cluster.RingEpoch != nodes[0].node.Ring().Epoch() {
		t.Fatal("healthz ring epoch disagrees with the ring")
	}
	if len(h.Cluster.Replication) != 1 || h.Cluster.Replication[0].Peer != "n2" {
		t.Fatalf("replication status = %+v", h.Cluster.Replication)
	}
}

// benchCluster builds the 2-in-process-node fixture the routing-overhead
// benchmarks share, plus a cycle of pre-encoded single-owner binary
// batches for a target owned by n2.
func benchCluster(b *testing.B, route string) (nodes []*testNode, bodies [][]byte) {
	cfg := noRefit(clusterServeConfig())
	cfg.MinWindow = 1 << 30 // no model work, isolate routing
	nodes = startTestCluster(b, 2, route, cfg)
	ring := nodes[0].node.Ring()
	var target astopo.AS
	for _, as := range testTargets {
		if ring.Owner(as).ID == "n2" {
			target = as
			break
		}
	}
	if target == 0 {
		b.Fatal("no test target owned by n2")
	}
	const pool, batch = 64, 64
	recs := mkClusterAttacks([]astopo.AS{target}, pool*batch)
	for i := 0; i < pool; i++ {
		bodies = append(bodies, encodeBinaryBatch(b, recs[i*batch:(i+1)*batch]))
	}
	return nodes, bodies
}

// The three routing benchmarks measure the same 64-record binary batch
// landing on its owner: directly, through the non-owner's split-proxy,
// and via a 307 bounce. bench.sh distills their deltas into BENCH_7.json.

func BenchmarkClusterRoutingDirect(b *testing.B) {
	nodes, bodies := benchCluster(b, RouteProxy)
	client := nodes[1].srv.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, client, nodes[1].srv.URL, bodies[i%len(bodies)])
	}
}

func BenchmarkClusterRoutingProxy(b *testing.B) {
	nodes, bodies := benchCluster(b, RouteProxy)
	client := nodes[0].srv.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, client, nodes[0].srv.URL, bodies[i%len(bodies)])
	}
}

func BenchmarkClusterRoutingRedirect(b *testing.B) {
	nodes, bodies := benchCluster(b, RouteRedirect)
	client := nodes[0].srv.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, client, nodes[0].srv.URL, bodies[i%len(bodies)])
	}
}
