package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/astopo"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Ownership-aware routing (DESIGN.md §12). Handler wraps the service mux:
//
//   - /ingest: the body is buffered and decoded (binary batch or JSON),
//     records are partitioned by owner, and each partition travels as a
//     binary batch. The local partition re-enters the wrapped mux
//     in-process — identical semantics (shedding, durability, tracing) to
//     a directly addressed request. Remote partitions are forwarded to
//     their owners frame-for-frame (no re-encoding for binary input);
//     under "redirect" a single-remote-owner request is answered 307
//     instead (a redirect cannot split a batch, so mixed-owner bodies
//     still split-proxy). Per-partition IngestResults merge into one
//     response: counts sum, the worst status wins.
//   - /forecast: ?target=N hashes on the ring; non-owned targets proxy or
//     307 to the owner.
//   - /cluster/*: ring introspection, WAL shipping, promotion.
//   - Everything else (metrics, healthz, traces, ...) serves locally.
//
// Forwarded requests carry ForwardedHeader and the sender's ring epoch;
// the receiver applies them locally without re-routing (loop guard) after
// checking the epoch — a 421 tells the sender the membership views split.

// Handler wraps the service's mux with cluster routing.
func (n *Node) Handler(inner http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/ring", n.handleRing)
	mux.HandleFunc("/cluster/wal", n.handleWALShip)
	mux.HandleFunc("/cluster/checkpoint", n.handleCheckpoint)
	mux.HandleFunc("/cluster/promote", n.handlePromote)
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		n.routeIngest(w, r, inner)
	})
	mux.HandleFunc("/forecast", func(w http.ResponseWriter, r *http.Request) {
		n.routeForecast(w, r, inner)
	})
	mux.HandleFunc("/statusz", n.handleStatusz)
	mux.HandleFunc("/debug/traces", n.handleTraces)
	mux.Handle("/", inner)
	return mux
}

// handleRing serves the membership and per-member URLs (debugging, and
// the cross-node formation check in smoke).
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	ring := n.ring.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"self":    n.self.ID,
		"epoch":   ring.Epoch(),
		"members": ring.Members(),
	})
}

// handlePromote removes a dead member from this node's ring:
// POST /cluster/promote?dead=<member-id>.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dead := r.URL.Query().Get("dead")
	if dead == "" {
		writeErr(w, http.StatusBadRequest, "missing dead parameter (member id)")
		return
	}
	if err := n.Promote(dead); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ring := n.ring.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": n.self.ID, "removed": dead,
		"epoch": ring.Epoch(), "members": ring.Size(),
	})
}

// checkForwarded applies the loop guard: a forwarded request is served
// locally, but only when both nodes agree on the membership.
func (n *Node) checkForwarded(w http.ResponseWriter, r *http.Request) (forwarded, reject bool) {
	if r.Header.Get(ForwardedHeader) == "" {
		return false, false
	}
	if got := r.Header.Get(EpochHeader); got != "" {
		if want := strconv.FormatUint(n.ring.Load().Epoch(), 10); got != want {
			n.met.misdirected.Inc()
			writeErr(w, http.StatusMisdirectedRequest,
				fmt.Sprintf("ring epoch mismatch: sender %s, here %s", got, want))
			return true, true
		}
	}
	return true, false
}

func (n *Node) routeForecast(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	if fwd, reject := n.checkForwarded(w, r); fwd {
		if !reject {
			inner.ServeHTTP(w, r)
		}
		return
	}
	q := r.URL.Query().Get("target")
	asn, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		// Let the service produce its canonical bad-target error.
		inner.ServeHTTP(w, r)
		return
	}
	owner := n.ring.Load().Owner(astopo.AS(asn))
	if owner.ID == n.self.ID {
		inner.ServeHTTP(w, r)
		return
	}
	if n.route == RouteRedirect {
		n.redirectTraced(w, r, owner)
		return
	}
	n.proxyGet(w, r, owner, r.URL.RequestURI())
}

// redirectTraced answers 307 to the owner with trace context threaded
// into the Location URL. A header cannot carry it: Go clients replay the
// original request headers on redirect, so anything this node adds to
// its response never reaches the owner. The ?xtrace= query parameter
// rides the Location URL instead, and the owner's handler picks it up as
// the fallback in obs.ContextFromRequest — the redirected request's span
// lands in the same trace as this routing decision.
func (n *Node) redirectTraced(w http.ResponseWriter, r *http.Request, owner Member) {
	ctx, _ := obs.ContextFromRequest(r)
	span := n.svc.Tracer().StartRemote(serve.StageProxy, ctx)
	span.SetAttr("mode", "redirect")
	span.SetAttr("peer", owner.ID)
	defer span.End()
	n.met.redirects.Inc()
	http.Redirect(w, r, owner.URL+withTraceParam(r.URL.RequestURI(), span.Context()), http.StatusTemporaryRedirect)
}

// withTraceParam appends the xtrace query parameter to a request URI.
func withTraceParam(uri string, ctx obs.TraceContext) string {
	sep := "?"
	if strings.Contains(uri, "?") {
		sep = "&"
	}
	return uri + sep + obs.TraceParam + "=" + ctx.String()
}

// proxyGet forwards a GET to the owner and copies the response through.
func (n *Node) proxyGet(w http.ResponseWriter, r *http.Request, owner Member, uri string) {
	ctx, _ := obs.ContextFromRequest(r)
	span := n.svc.Tracer().StartRemote(serve.StageProxy, ctx)
	span.SetAttr("mode", "proxy")
	span.SetAttr("peer", owner.ID)
	defer span.End()
	req, err := http.NewRequest(http.MethodGet, owner.URL+uri, nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	n.forwardHeaders(req)
	req.Header.Set(obs.TraceHeader, span.Context().String())
	resp, err := n.client.Do(req)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Sprintf("owner %s unreachable: %v", owner.ID, err))
		return
	}
	defer resp.Body.Close()
	n.met.proxied.Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (n *Node) forwardHeaders(req *http.Request) {
	req.Header.Set(ForwardedHeader, n.self.ID)
	req.Header.Set(EpochHeader, strconv.FormatUint(n.ring.Load().Epoch(), 10))
}

// splitScratch is routeIngest's pooled working set.
type splitScratch struct {
	body bytes.Buffer
	dec  *trace.BatchDecoder
	recs []trace.Attack // decoded JSON records
	encs [][]byte       // per-record payloads (JSON input re-encoded)
	enc  []byte         // arena behind encs
	part map[string]*partition
}

type partition struct {
	owner Member
	body  bytes.Buffer
	enc   *trace.BatchEncoder
	count int
}

var splitPool = sync.Pool{New: func() any {
	return &splitScratch{dec: trace.NewBatchDecoder(), part: make(map[string]*partition)}
}}

func (sc *splitScratch) reset() {
	sc.body.Reset()
	sc.recs = sc.recs[:0]
	sc.encs = sc.encs[:0]
	sc.enc = sc.enc[:0]
	for id, p := range sc.part {
		if p.count > 64 { // don't pin unusually large bodies in the pool
			delete(sc.part, id)
			continue
		}
		p.body.Reset()
		p.count = 0
	}
}

func (sc *splitScratch) partitionFor(m Member) *partition {
	p := sc.part[m.ID]
	if p == nil {
		p = &partition{}
		p.enc = trace.NewBatchEncoder(&p.body)
		sc.part[m.ID] = p
	}
	p.owner = m
	if p.count == 0 {
		p.enc.Reset(&p.body)
	}
	return p
}

func (n *Node) routeIngest(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	if fwd, reject := n.checkForwarded(w, r); fwd {
		if !reject {
			inner.ServeHTTP(w, r)
		}
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	sc := splitPool.Get().(*splitScratch)
	defer func() { sc.reset(); splitPool.Put(sc) }()

	body := http.MaxBytesReader(w, r.Body, n.maxBody)
	if _, err := sc.body.ReadFrom(body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeIngest(w, http.StatusRequestEntityTooLarge, serve.IngestResult{
				Error: fmt.Sprintf("request body larger than %d bytes", tooBig.Limit)})
			return
		}
		writeIngest(w, http.StatusBadRequest, serve.IngestResult{Error: err.Error()})
		return
	}

	// Decode enough to know each record's target. Binary input keeps its
	// raw frames for byte-identical forwarding; JSON records are encoded
	// once here, so every partition (local included) travels binary.
	binaryWire := r.Header.Get("Content-Type") == trace.BatchContentType
	var records []trace.Attack
	payload := func(i int) []byte { return nil }
	if binaryWire {
		sc.dec.Reset(bytes.NewReader(sc.body.Bytes()))
		if err := sc.dec.Decode(0); err != nil {
			// Nothing decodable: hand the raw body to the local service so
			// its error mapping (400 with the frame index, 413, ...) answers.
			n.serveLocal(w, r, inner, sc.body.Bytes(), true)
			return
		}
		records = sc.dec.Records()
		payload = sc.dec.Payload
	} else {
		dec := trace.NewStreamDecoder(bytes.NewReader(sc.body.Bytes()))
		var offs []int
		for {
			a, err := dec.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// Same: let the service answer with its canonical record error.
				n.serveLocal(w, r, inner, sc.body.Bytes(), false)
				return
			}
			sc.recs = append(sc.recs, *a)
			start := len(sc.enc)
			sc.enc, err = trace.AppendRecord(sc.enc, a)
			if err != nil {
				n.serveLocal(w, r, inner, sc.body.Bytes(), false)
				return
			}
			offs = append(offs, start)
		}
		records = sc.recs
		for i := range offs {
			end := len(sc.enc)
			if i+1 < len(offs) {
				end = offs[i+1]
			}
			sc.encs = append(sc.encs, sc.enc[offs[i]:end])
		}
		payload = func(i int) []byte { return sc.encs[i] }
	}

	ring := n.ring.Load()
	if len(records) == 0 {
		n.serveLocal(w, r, inner, sc.body.Bytes(), binaryWire)
		return
	}

	// Partition by owner, preserving arrival order within each owner (and
	// so per-target order).
	allLocal, remoteOwners := true, 0
	var remote Member
	for i := range records {
		owner := ring.Owner(records[i].TargetAS)
		if owner.ID == n.self.ID {
			continue
		}
		allLocal = false
		if p := sc.part[owner.ID]; p == nil || p.count == 0 {
			remoteOwners++
			remote = owner
		}
		p := sc.partitionFor(owner)
		if err := p.enc.EncodeFrame(payload(i)); err != nil {
			writeIngest(w, http.StatusInternalServerError, serve.IngestResult{Error: err.Error()})
			return
		}
		p.count++
	}

	if allLocal {
		n.serveLocal(w, r, inner, sc.body.Bytes(), binaryWire)
		return
	}

	// Redirect mode: a request owned entirely by one remote node gets the
	// 307; the client re-sends the identical body to the owner.
	localCount := len(records) - totalCount(sc.part)
	if n.route == RouteRedirect && remoteOwners == 1 && localCount == 0 {
		n.redirectTraced(w, r, remote)
		return
	}

	// Split-proxy: local partition in-process, remote partitions forwarded
	// concurrently, results merged. The root span adopts any inbound trace
	// context; each remote partition forwards a child span's context, so
	// the owners' ingest spans stitch under this router span as one tree.
	reqCtx, _ := obs.ContextFromRequest(r)
	span := n.svc.Tracer().StartRemote(serve.StageProxy, reqCtx)
	span.SetAttr("mode", "split")
	span.SetAttr("records", strconv.Itoa(len(records)))
	defer span.End()
	var wg sync.WaitGroup
	results := make([]partResult, 0, remoteOwners+1)
	resMu := sync.Mutex{}
	add := func(pr partResult) {
		resMu.Lock()
		results = append(results, pr)
		resMu.Unlock()
	}
	for _, p := range sc.part {
		if p.count == 0 {
			continue
		}
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			add(n.forwardPartition(p, span))
		}(p)
		n.met.fwdRecords.Add(uint64(p.count))
	}
	if localCount > 0 {
		// The local partition: rebuild a binary batch of just the locally
		// owned frames and serve it through the wrapped mux in-process.
		var local bytes.Buffer
		enc := trace.NewBatchEncoder(&local)
		for i := range records {
			if ring.Owner(records[i].TargetAS).ID != n.self.ID {
				continue
			}
			if err := enc.EncodeFrame(payload(i)); err != nil {
				add(partResult{status: http.StatusInternalServerError, res: serve.IngestResult{Error: err.Error()}})
				local.Reset()
				break
			}
		}
		if local.Len() > 0 {
			status, res := n.ingestLocal(r, inner, local.Bytes(), true, span.Context())
			add(partResult{status: status, res: res})
		}
	}
	wg.Wait()

	merged := serve.IngestResult{}
	worst := http.StatusOK
	for _, pr := range results {
		merged.Ingested += pr.res.Ingested
		merged.Duplicates += pr.res.Duplicates
		merged.Rejected += pr.res.Rejected
		if pr.res.Error != "" && merged.Error == "" {
			merged.Error = pr.res.Error
		}
		if statusRank(pr.status) > statusRank(worst) {
			worst = pr.status
		}
	}
	writeIngest(w, worst, merged)
}

func totalCount(parts map[string]*partition) int {
	n := 0
	for _, p := range parts {
		n += p.count
	}
	return n
}

// statusRank orders partition statuses for the merged response: a full
// success only when every partition succeeded; otherwise the most severe
// failure class answers (5xx > 4xx > 2xx) so clients retry appropriately.
func statusRank(status int) int {
	switch {
	case status >= 500:
		return 3
	case status == http.StatusTooManyRequests:
		return 2
	case status >= 400:
		return 1
	default:
		return 0
	}
}

// partResult is one partition's outcome in the merged response.
type partResult struct {
	res    serve.IngestResult
	status int
}

// forwardPartition posts one owner's frames to that owner. The forward
// travels as a child span of the router's split root; the owner's ingest
// root parents under it via the propagated header.
func (n *Node) forwardPartition(p *partition, parent *obs.Span) (pr partResult) {
	child := parent.Child("forward")
	child.SetAttr("peer", p.owner.ID)
	child.SetAttr("records", strconv.Itoa(p.count))
	defer child.End()
	req, err := http.NewRequest(http.MethodPost, p.owner.URL+"/ingest", bytes.NewReader(p.body.Bytes()))
	if err != nil {
		pr.status = http.StatusInternalServerError
		pr.res.Error = err.Error()
		return pr
	}
	req.Header.Set("Content-Type", trace.BatchContentType)
	n.forwardHeaders(req)
	req.Header.Set(obs.TraceHeader, child.Context().String())
	resp, err := n.client.Do(req)
	if err != nil {
		pr.status = http.StatusBadGateway
		pr.res.Error = fmt.Sprintf("owner %s unreachable: %v", p.owner.ID, err)
		return pr
	}
	defer resp.Body.Close()
	n.met.proxied.Inc()
	pr.status = resp.StatusCode
	if err := readJSON(resp.Body, &pr.res); err != nil && pr.res.Error == "" {
		pr.res.Error = fmt.Sprintf("owner %s: unreadable response: %v", p.owner.ID, err)
	}
	return pr
}

// serveLocal replays the buffered body into the wrapped mux — the
// all-local fast path keeps byte-identical semantics with a directly
// addressed request.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, inner http.Handler, body []byte, binaryWire bool) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	inner.ServeHTTP(w, r2)
}

// ingestLocal runs a synthesized binary batch through the wrapped mux
// in-process and parses the IngestResult back out. The synthesized
// request carries tctx so the local ingest span joins the router's trace.
func (n *Node) ingestLocal(r *http.Request, inner http.Handler, body []byte, binaryWire bool, tctx obs.TraceContext) (int, serve.IngestResult) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/ingest", bytes.NewReader(body))
	if err != nil {
		return http.StatusInternalServerError, serve.IngestResult{Error: err.Error()}
	}
	if binaryWire {
		req.Header.Set("Content-Type", trace.BatchContentType)
	}
	if tctx.Valid() {
		req.Header.Set(obs.TraceHeader, tctx.String())
	}
	rec := &responseBuffer{status: http.StatusOK}
	inner.ServeHTTP(rec, req)
	var res serve.IngestResult
	if err := readJSON(bytes.NewReader(rec.body.Bytes()), &res); err != nil && res.Error == "" {
		res.Error = fmt.Sprintf("local ingest: unreadable response: %v", err)
	}
	return rec.status, res
}

// responseBuffer captures an in-process handler response.
type responseBuffer struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (rb *responseBuffer) Header() http.Header {
	if rb.header == nil {
		rb.header = make(http.Header)
	}
	return rb.header
}

func (rb *responseBuffer) Write(b []byte) (int, error) { return rb.body.Write(b) }

func (rb *responseBuffer) WriteHeader(status int) { rb.status = status }

func readJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeIngest(w http.ResponseWriter, status int, res serve.IngestResult) {
	writeJSON(w, status, &res)
}

// sortReplicaStatuses orders Status.Replication by peer for stable JSON.
func sortReplicaStatuses(rs []ReplicaStatus) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Peer < rs[j].Peer })
}
