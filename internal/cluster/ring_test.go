package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/astopo"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("node-%02d", i), URL: fmt.Sprintf("http://10.0.0.%d:8400", i+1)}
	}
	return ms
}

func mustRing(t *testing.T, ms []Member) *Ring {
	t.Helper()
	r, err := NewRing(ms)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

// Ownership must spread evenly: across 16 nodes and a large universe of
// target AS keys, every node's share stays within ±20% of the mean
// (ISSUE acceptance bound).
func TestClusterRingBalance(t *testing.T) {
	const nodes, keys = 16, 100_000
	r := mustRing(t, testMembers(nodes))
	counts := make(map[string]int, nodes)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < keys; i++ {
		// Half sequential (realistic dense AS numbering), half random.
		as := astopo.AS(i)
		if i%2 == 1 {
			as = astopo.AS(rng.Uint32())
		}
		counts[r.Owner(as).ID]++
	}
	mean := float64(keys) / float64(nodes)
	for _, m := range r.Members() {
		got := float64(counts[m.ID])
		if got < 0.8*mean || got > 1.2*mean {
			t.Errorf("member %s owns %.0f keys, outside ±20%% of mean %.0f", m.ID, got, mean)
		}
	}
}

// Follower placement must spread too — the follower carries a full
// replica of the owner's partition, so a hot follower is a hot node.
func TestClusterRingFollowerBalance(t *testing.T) {
	const nodes, keys = 16, 100_000
	r := mustRing(t, testMembers(nodes))
	counts := make(map[string]int, nodes)
	for i := 0; i < keys; i++ {
		owner, follower := r.OwnerFollower(astopo.AS(i))
		if owner.ID == follower.ID {
			t.Fatalf("AS%d: follower == owner (%s) in a %d-node ring", i, owner.ID, nodes)
		}
		counts[follower.ID]++
	}
	mean := float64(keys) / float64(nodes)
	for _, m := range r.Members() {
		got := float64(counts[m.ID])
		if got < 0.8*mean || got > 1.2*mean {
			t.Errorf("member %s follows %.0f keys, outside ±20%% of mean %.0f", m.ID, got, mean)
		}
	}
}

// Rendezvous hashing's defining property: removing one member moves only
// the keys that member owned (to their previous follower — surviving
// members' relative scores are untouched), and adding it back restores
// the original assignment exactly. Joint bound: moved fraction ≈ 1/n.
func TestClusterRingMinimalMovement(t *testing.T) {
	const nodes, keys = 16, 50_000
	full := mustRing(t, testMembers(nodes))
	const victim = "node-07"
	shrunk, err := full.Without(victim)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	if shrunk.Size() != nodes-1 {
		t.Fatalf("shrunk ring has %d members, want %d", shrunk.Size(), nodes-1)
	}

	moved := 0
	for i := 0; i < keys; i++ {
		as := astopo.AS(i)
		owner, follower := full.OwnerFollower(as)
		newOwner := shrunk.Owner(as)
		if owner.ID == victim {
			moved++
			if newOwner.ID != follower.ID {
				t.Fatalf("AS%d: owner after leave is %s, want old follower %s", i, newOwner.ID, follower.ID)
			}
			continue
		}
		if newOwner.ID != owner.ID {
			t.Fatalf("AS%d: owner moved %s -> %s though %s left", i, owner.ID, newOwner.ID, victim)
		}
	}
	// Expected moved fraction is 1/16 ≈ 6.25%; allow ±20% slack on that.
	frac := float64(moved) / float64(keys)
	if frac < 0.05 || frac > 0.075 {
		t.Errorf("leave moved %.2f%% of keys, want ~%.2f%%", frac*100, 100.0/nodes)
	}

	// Re-join: rebuilding with the original membership restores ownership
	// for every key (the ring is a pure function of the member set).
	rejoined := mustRing(t, shrunk.Members())
	rejoined = mustRing(t, append(rejoined.Members(), Member{ID: victim, URL: "http://10.0.0.8:8400"}))
	for i := 0; i < keys; i++ {
		as := astopo.AS(i)
		if rejoined.Owner(as).ID != full.Owner(as).ID {
			t.Fatalf("AS%d: ownership not restored after rejoin", i)
		}
	}
}

// Every node must compute identical ownership and epoch from any
// permutation of the same -cluster-peers list.
func TestClusterRingPermutationDeterminism(t *testing.T) {
	ms := testMembers(8)
	r1 := mustRing(t, ms)
	shuffled := make([]Member, len(ms))
	copy(shuffled, ms)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2 := mustRing(t, shuffled)
	if r1.Epoch() != r2.Epoch() {
		t.Fatalf("epoch differs across permutations: %x vs %x", r1.Epoch(), r2.Epoch())
	}
	for i := 0; i < 10_000; i++ {
		o1, f1 := r1.OwnerFollower(astopo.AS(i))
		o2, f2 := r2.OwnerFollower(astopo.AS(i))
		if o1.ID != o2.ID || f1.ID != f2.ID {
			t.Fatalf("AS%d: assignment differs across permutations", i)
		}
	}
}

func TestClusterRingEpochChangesOnMembership(t *testing.T) {
	r := mustRing(t, testMembers(4))
	shrunk, err := r.Without("node-02")
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Epoch() == r.Epoch() {
		t.Fatal("epoch unchanged after a member left")
	}
	if _, err := r.Without("nope"); err == nil {
		t.Fatal("Without accepted an unknown member")
	}
}

func TestClusterRingSingleMember(t *testing.T) {
	r := mustRing(t, testMembers(1))
	owner, follower := r.OwnerFollower(42)
	if owner.ID != "node-00" || follower.ID != "node-00" {
		t.Fatalf("single-member ring gave owner=%s follower=%s", owner.ID, follower.ID)
	}
	if _, err := r.Without("node-00"); err == nil {
		t.Fatal("Without emptied the ring")
	}
}

func TestClusterParseMembers(t *testing.T) {
	ms, err := ParseMembers("n1=http://a:1, n2=b:2 ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "n1", URL: "http://a:1"},
		{ID: "n2", URL: "http://b:2"},
		{ID: "http://c:3", URL: "http://c:3"},
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d members, want %d", len(ms), len(want))
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("member %d = %+v, want %+v", i, ms[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "n1=http://a,n1=http://b", "=x"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}
