package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/metrics"
	"repro/internal/wal"
)

// Config wires one node into a cluster.
type Config struct {
	// Self is this node's member ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, this node included.
	Peers []Member
	// Route selects how non-owned requests are handled: "proxy" forwards
	// them to the owner transparently, "redirect" answers 307 (mixed-owner
	// batches still split-proxy — one redirect cannot split a batch).
	Route string
	// PollInterval paces the replication tailers. Default 500ms.
	PollInterval time.Duration
	// MaxBodyBytes caps a routed /ingest body. Default 8 MiB (the serve
	// default; ddosd passes its -max-ingest-bytes).
	MaxBodyBytes int64
	// Client is the HTTP client for proxying and replication. Default: a
	// client with a 30s timeout.
	Client *http.Client
	// Logger receives replication and promotion events. Default: discard.
	Logger *slog.Logger
}

// Route modes.
const (
	RouteProxy    = "proxy"
	RouteRedirect = "redirect"
)

// Forwarding headers. A request carrying ForwardedHeader skips routing on
// the receiving node (it was already routed once — the loop guard); the
// receiver rejects it with 421 when its ring epoch disagrees with
// EpochHeader, so a membership split surfaces as an explicit error
// instead of silent misplacement.
const (
	ForwardedHeader = "X-Cluster-Forwarded"
	EpochHeader     = "X-Cluster-Epoch"
)

// clusterMetrics are the ddosd_cluster_* instruments, registered into the
// service's own registry so one /metrics scrape covers both layers.
type clusterMetrics struct {
	ringSize       *metrics.Gauge
	ringEpoch      *metrics.Gauge
	proxied        *metrics.Counter
	redirects      *metrics.Counter
	misdirected    *metrics.Counter
	fwdRecords     *metrics.Counter
	replRecords    *metrics.Counter
	replSegments   *metrics.Counter
	replLag        *metrics.Gauge
	replErrors     *metrics.Counter
	ckptInstalls   *metrics.Counter
	promotions     *metrics.Counter
	segmentsServed *metrics.Counter
	peerUp         *metrics.GaugeVec
}

func newClusterMetrics(r *metrics.Registry) *clusterMetrics {
	return &clusterMetrics{
		ringSize:       r.Gauge("ddosd_cluster_ring_size", "Members in the cluster ring."),
		ringEpoch:      r.Gauge("ddosd_cluster_ring_epoch", "Digest of the current ring membership."),
		proxied:        r.Counter("ddosd_cluster_proxied_total", "Requests (or batch partitions) forwarded to an owner node."),
		redirects:      r.Counter("ddosd_cluster_redirects_total", "Requests answered with a 307 redirect to the owner node."),
		misdirected:    r.Counter("ddosd_cluster_misdirected_total", "Forwarded requests rejected with 421 over a ring epoch mismatch."),
		fwdRecords:     r.Counter("ddosd_cluster_forwarded_records_total", "Records forwarded to owner nodes inside split batches."),
		replRecords:    r.Counter("ddosd_cluster_replicated_records_total", "Records applied from peers' shipped WAL segments."),
		replSegments:   r.Counter("ddosd_cluster_replicated_segments_total", "Sealed WAL segments tailed from peers."),
		replLag:        r.Gauge("ddosd_cluster_replication_lag_segments", "Sealed peer segments not yet applied locally (all peers)."),
		replErrors:     r.Counter("ddosd_cluster_replication_errors_total", "Failed replication polls."),
		ckptInstalls:   r.Counter("ddosd_cluster_checkpoint_installs_total", "Catch-up checkpoint installs (cursor fell behind peer compaction)."),
		promotions:     r.Counter("ddosd_cluster_promotions_total", "Ring promotions after a peer was declared dead."),
		segmentsServed: r.Counter("ddosd_cluster_segments_served_total", "Sealed WAL segments streamed to followers."),
		peerUp:         r.GaugeVec("ddosd_cluster_peer_up", "Peer reachability: 1 when the last contact (replication poll or status fan-out) succeeded.", "peer"),
	}
}

// Node is one cluster member: the router wrapping the local service's
// HTTP handler, the owner-side WAL shipping endpoint, and one replication
// tailer per peer.
type Node struct {
	self    Member
	route   string
	svc     *serve.Service
	wal     *wal.WAL
	client  *http.Client
	logger  *slog.Logger
	met     *clusterMetrics
	maxBody int64

	ring atomic.Pointer[Ring]

	// lastLag is the most recent Replicate pass's total lag in segments
	// (the watchdog's replication-lag probe reads it without touching the
	// replicator locks).
	lastLag atomic.Int64

	mu   sync.Mutex // guards repl map mutation (promotion vs polls)
	repl map[string]*replicator

	pollInterval time.Duration
	stop         chan struct{}
	done         chan struct{}
	started      bool
}

// NewNode builds a node over svc and its WAL. The WAL is required: sealed
// segments are the replication unit, and the replication cursors persist
// next to them. Call Start to begin tailing peers; Handler wraps the
// service mux with ownership routing and the /cluster/* endpoints.
func NewNode(svc *serve.Service, w *wal.WAL, cfg Config) (*Node, error) {
	if w == nil {
		return nil, errors.New("cluster: a WAL is required (replication ships its segments)")
	}
	ring, err := NewRing(cfg.Peers)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Lookup(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self %q not in the peer list", cfg.Self)
	}
	switch cfg.Route {
	case "":
		cfg.Route = RouteProxy
	case RouteProxy, RouteRedirect:
	default:
		return nil, fmt.Errorf("cluster: bad route mode %q (want proxy or redirect)", cfg.Route)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	n := &Node{
		self:         self,
		route:        cfg.Route,
		svc:          svc,
		wal:          w,
		client:       cfg.Client,
		logger:       cfg.Logger,
		met:          newClusterMetrics(svc.MetricsRegistry()),
		maxBody:      cfg.MaxBodyBytes,
		repl:         make(map[string]*replicator),
		pollInterval: cfg.PollInterval,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	n.ring.Store(ring)
	n.met.ringSize.Set(int64(ring.Size()))
	n.met.ringEpoch.Set(int64(ring.Epoch()))
	for _, m := range ring.Members() {
		if m.ID == self.ID {
			continue
		}
		// Pre-create the peer-up children so the series exist from boot
		// (0 until the first successful contact).
		n.met.peerUp.With(m.ID)
		r, err := newReplicator(n, m)
		if err != nil {
			return nil, err
		}
		n.repl[m.ID] = r
	}
	svc.SetClusterInfo(func() any { return n.Status() })
	return n, nil
}

// Self returns this node's member entry.
func (n *Node) Self() Member { return n.self }

// Ring returns the current ring (it changes only on Promote).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// RouteMode returns the configured routing mode.
func (n *Node) RouteMode() string { return n.route }

// Start launches the replication tailers. Call once, after the local
// HTTP listener is up (peers may poll back immediately).
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	go n.pollLoop()
}

func (n *Node) pollLoop() {
	defer close(n.done)
	t := time.NewTicker(n.pollInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Replicate()
		}
	}
}

// Replicate runs one synchronous replication pass over every peer and
// returns the total remaining lag in sealed segments (0 = every peer's
// sealed log is fully applied locally). Tests drive this directly to
// establish a sync point before killing an owner.
func (n *Node) Replicate() int {
	n.mu.Lock()
	reps := make([]*replicator, 0, len(n.repl))
	for _, r := range n.repl {
		reps = append(reps, r)
	}
	n.mu.Unlock()
	lag := 0
	for _, r := range reps {
		l, err := r.poll()
		if err != nil {
			n.met.replErrors.Inc()
			n.met.peerUp.With(r.peer.ID).Set(0)
			n.logger.Warn("replication poll failed", "component", "cluster", "peer", r.peer.ID, "error", err)
			lag++ // unknown lag counts as behind
			continue
		}
		n.met.peerUp.With(r.peer.ID).Set(1)
		lag += l
	}
	n.met.replLag.Set(int64(lag))
	n.lastLag.Store(int64(lag))
	return lag
}

// Lag returns the most recent replication pass's total lag in sealed
// segments (the serve watchdog's replication-lag probe).
func (n *Node) Lag() int { return int(n.lastLag.Load()) }

// Promote removes a dead member from the ring. Rendezvous hashing hands
// each of its targets to that target's previous follower — this node for
// the partitions it was already tailing, so the data is local and warm.
// Refits are re-queued and flushed so /forecast serves the newly owned
// targets immediately. Every surviving node must be promoted with the
// same dead member (smoke/CI POSTs /cluster/promote to each).
func (n *Node) Promote(deadID string) error {
	if deadID == n.self.ID {
		return errors.New("cluster: refusing to remove self from the ring")
	}
	ring := n.ring.Load()
	next, err := ring.Without(deadID)
	if err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.repl, deadID)
	n.mu.Unlock()
	n.ring.Store(next)
	n.met.ringSize.Set(int64(next.Size()))
	n.met.ringEpoch.Set(int64(next.Epoch()))
	n.met.promotions.Inc()
	refits := n.svc.RequeueRefits()
	n.logger.Info("promoted", "component", "cluster",
		"dead", deadID, "ring_epoch", next.Epoch(), "members", next.Size(), "refits", refits)
	return nil
}

// Close stops the replication tailers.
func (n *Node) Close() {
	n.mu.Lock()
	started := n.started
	n.started = false
	n.mu.Unlock()
	if started {
		close(n.stop)
		<-n.done
	}
}

// ReplicaStatus is one peer's replication state in Status.
type ReplicaStatus struct {
	Peer      string `json:"peer"`
	CursorSeq uint64 `json:"cursor_seq"` // highest peer segment applied
	LagSegs   int    `json:"lag_segments"`
	Installs  uint64 `json:"checkpoint_installs"`
	Errors    uint64 `json:"errors"`
}

// Status is the /healthz cluster section.
type Status struct {
	Node        string          `json:"node"`
	RingEpoch   uint64          `json:"ring_epoch"`
	Members     int             `json:"members"`
	Route       string          `json:"route"`
	Replication []ReplicaStatus `json:"replication,omitempty"`
}

// Status summarizes the node for /healthz.
func (n *Node) Status() *Status {
	ring := n.ring.Load()
	st := &Status{
		Node:      n.self.ID,
		RingEpoch: ring.Epoch(),
		Members:   ring.Size(),
		Route:     n.route,
	}
	n.mu.Lock()
	for _, r := range n.repl {
		st.Replication = append(st.Replication, r.status())
	}
	n.mu.Unlock()
	sortReplicaStatuses(st.Replication)
	return st
}
