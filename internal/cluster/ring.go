// Package cluster is the multi-node layer over the single-node serving
// stack (DESIGN.md §12): a coordinator-free rendezvous-hash ring over a
// static membership list assigns every target network an owner node and
// one follower, an ownership-aware HTTP router proxies or redirects
// /ingest and /forecast to the owner, and replication ships the owner's
// sealed write-ahead-log segments to the follower, which replays them
// through the same ingest path — so a promoted follower restores a
// byte-identical store with the exactly-once checkpoint recovery already
// proven for single-node crashes.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/astopo"
)

// Member is one node of the static membership: a stable identity the ring
// hashes (so ownership survives address changes and is reproducible in
// tests) plus the base URL requests are routed to.
type Member struct {
	ID  string // stable node name, e.g. "n1"
	URL string // base URL, e.g. "http://127.0.0.1:8401"
}

// ParseMember reads one -cluster-peers element: "name=url" or a bare
// url/host:port (which then serves as its own ID). A bare host:port gets
// an http:// scheme.
func ParseMember(s string) (Member, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Member{}, errors.New("cluster: empty peer")
	}
	var m Member
	if id, url, ok := strings.Cut(s, "="); ok && !strings.Contains(id, "/") {
		m = Member{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)}
	} else {
		m = Member{ID: s, URL: s}
	}
	if m.ID == "" || m.URL == "" {
		return Member{}, fmt.Errorf("cluster: bad peer %q (want name=url or url)", s)
	}
	if !strings.Contains(m.URL, "://") {
		m.URL = "http://" + m.URL
	}
	m.URL = strings.TrimRight(m.URL, "/")
	return m, nil
}

// ParseMembers reads a comma-separated -cluster-peers list, rejecting
// duplicate IDs.
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		m, err := ParseMember(part)
		if err != nil {
			return nil, err
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", m.ID)
		}
		seen[m.ID] = true
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	return out, nil
}

// Ring is an immutable rendezvous-hash (highest-random-weight) ring over
// the membership. Every target AS hashes against every member; the
// highest score owns the target and the runner-up is its follower. The
// scheme needs no coordinator and no token metadata, and removing one
// member reassigns only the keys that member held (each surviving
// member's scores are unchanged, so the previous runner-up — the
// follower — takes over, which is exactly the takeover path replication
// prepares for). Membership is static per process; Without builds the
// post-failure ring at promotion time.
type Ring struct {
	members []Member // sorted by ID
	seeds   []uint64 // per-member hash seed, parallel to members
	epoch   uint64   // digest of the sorted membership IDs
}

// NewRing builds a ring. Member order does not matter: members are sorted
// by ID, so every node of a cluster computes identical ownership and the
// same epoch from any permutation of the same list.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i := 1; i < len(ms); i++ {
		if ms[i].ID == ms[i-1].ID {
			return nil, fmt.Errorf("cluster: duplicate member id %q", ms[i].ID)
		}
	}
	r := &Ring{members: ms, seeds: make([]uint64, len(ms))}
	// The epoch is a 32-bit digest: wide enough to distinguish membership
	// changes, narrow enough to render exactly in a Prometheus gauge and
	// in JSON numbers.
	eh := fnv.New32a()
	for i, m := range ms {
		h := fnv.New64a()
		h.Write([]byte(m.ID))
		r.seeds[i] = h.Sum64()
		eh.Write([]byte(m.ID))
		eh.Write([]byte{0})
	}
	r.epoch = uint64(eh.Sum32())
	return r, nil
}

// Epoch identifies the membership: equal on every node holding the same
// member set, different after any join, leave, or promotion. Exposed on
// /healthz and the readiness log so operators and CI can wait for all
// nodes to agree before trusting routing.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the membership sorted by ID (a copy).
func (r *Ring) Members() []Member {
	out := make([]Member, len(r.members))
	copy(out, r.members)
	return out
}

// Lookup returns the member with the given ID.
func (r *Ring) Lookup(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// Without returns a new ring with the named member removed — the
// promotion step after a node death. Removing the last member fails.
func (r *Ring) Without(id string) (*Ring, error) {
	var kept []Member
	for _, m := range r.members {
		if m.ID != id {
			kept = append(kept, m)
		}
	}
	if len(kept) == len(r.members) {
		return nil, fmt.Errorf("cluster: member %q not in ring", id)
	}
	return NewRing(kept)
}

// mix is splitmix64's finalizer: a cheap, well-distributed bijection that
// turns (member seed ⊕ key) into a rendezvous score.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *Ring) score(i int, key uint64) uint64 {
	return mix(r.seeds[i] ^ (key * 0x9e3779b97f4a7c15))
}

// Owner returns the member owning the target.
func (r *Ring) Owner(as astopo.AS) Member {
	o, _ := r.OwnerFollower(as)
	return o
}

// OwnerFollower returns the target's owner (highest rendezvous score) and
// follower (runner-up). In a single-member ring the follower equals the
// owner — there is nobody to replicate to.
func (r *Ring) OwnerFollower(as astopo.AS) (owner, follower Member) {
	key := uint64(as)
	bi, si := 0, 0
	var best, second uint64
	for i := range r.members {
		s := r.score(i, key)
		switch {
		case i == 0 || s > best:
			second, si = best, bi
			best, bi = s, i
		case i == 1 || s > second:
			second, si = s, i
		}
	}
	if len(r.members) == 1 {
		return r.members[0], r.members[0]
	}
	return r.members[bi], r.members[si]
}
