package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Fleet status aggregation and cross-node trace merging (DESIGN.md §14).
// /statusz on any node answers for the whole cluster: a concurrent,
// bounded fan-out collects every peer's local /statusz and merges them
// into one snapshot with per-peer error fields — one unreachable node
// degrades its own section, never the endpoint. /debug/traces?trace=<id>
// likewise fetches the matching span trees from every peer and stitches
// them into the single cross-node tree the request logically was.

// statuszTimeout bounds the whole fan-out: a hung peer costs this much
// wall time, not the client's patience.
const statuszTimeout = 2 * time.Second

// PeerStatus is one member's section of the fleet snapshot. Status is
// the peer's own /statusz document, passed through verbatim; Error is
// set (and Status nil) when the peer could not answer.
type PeerStatus struct {
	ID     string          `json:"id"`
	URL    string          `json:"url"`
	Self   bool            `json:"self,omitempty"`
	Error  string          `json:"error,omitempty"`
	Status json.RawMessage `json:"status,omitempty"`
}

// FleetStatus is the aggregated /statusz response body.
type FleetStatus struct {
	Node        string          `json:"node"`
	RingEpoch   uint64          `json:"ring_epoch"`
	Members     int             `json:"members"`
	Route       string          `json:"route"`
	Replication []ReplicaStatus `json:"replication,omitempty"`
	Peers       []PeerStatus    `json:"peers"`
}

// FleetStatus fans out to every peer concurrently and merges the
// responses. Unreachable peers come back with Error set; the local
// section never fails.
func (n *Node) FleetStatus(ctx context.Context) *FleetStatus {
	ring := n.ring.Load()
	st := &FleetStatus{
		Node:      n.self.ID,
		RingEpoch: ring.Epoch(),
		Members:   ring.Size(),
		Route:     n.route,
	}
	n.mu.Lock()
	for _, r := range n.repl {
		st.Replication = append(st.Replication, r.status())
	}
	n.mu.Unlock()
	sortReplicaStatuses(st.Replication)

	ctx, cancel := context.WithTimeout(ctx, statuszTimeout)
	defer cancel()
	members := ring.Members()
	st.Peers = make([]PeerStatus, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		st.Peers[i] = PeerStatus{ID: m.ID, URL: m.URL}
		if m.ID == n.self.ID {
			st.Peers[i].Self = true
			local, err := json.Marshal(n.svc.NodeStatus())
			if err != nil {
				st.Peers[i].Error = err.Error()
				continue
			}
			st.Peers[i].Status = local
			continue
		}
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			body, err := n.fetchPeerJSON(ctx, m, "/statusz?local=1")
			if err != nil {
				st.Peers[i].Error = err.Error()
				n.met.peerUp.With(m.ID).Set(0)
				return
			}
			st.Peers[i].Status = body
			n.met.peerUp.With(m.ID).Set(1)
		}(i, m)
	}
	wg.Wait()
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}

// fetchPeerJSON GETs one peer endpoint with the loop-guard headers and
// returns the raw JSON body.
func (n *Node) fetchPeerJSON(ctx context.Context, m Member, uri string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+uri, nil)
	if err != nil {
		return nil, err
	}
	n.forwardHeaders(req)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, n.maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, truncate(body, 200))
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("peer answered invalid JSON")
	}
	return body, nil
}

func truncate(b []byte, max int) string {
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// handleStatusz serves the aggregated fleet snapshot. ?local=1 (what the
// fan-out itself requests, alongside the forwarded loop guard) answers
// with this node's own section only.
func (n *Node) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if r.URL.Query().Get("local") == "1" || r.Header.Get(ForwardedHeader) != "" {
		st := n.svc.NodeStatus()
		writeJSON(w, http.StatusOK, &st)
		return
	}
	writeJSON(w, http.StatusOK, n.FleetStatus(r.Context()))
}

// handleTraces serves /debug/traces cluster-wide. Without ?trace= it
// behaves exactly like the node-local handler (plus Node stamping). With
// ?trace=<id> it also fetches the matching trees from every peer and
// stitches the forest — proxy fan-outs, redirects, and replication
// passes render as the single cross-node tree they are.
func (n *Node) handleTraces(w http.ResponseWriter, r *http.Request) {
	q, err := obs.QueryFromRequest(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	local := obs.FilterTraces(n.svc.Tracer().Snapshot(), q)
	for i := range local {
		stampNode(&local[i], n.self.ID)
	}
	forest := local
	if q.TraceID != "" && r.Header.Get(ForwardedHeader) == "" {
		ctx, cancel := context.WithTimeout(r.Context(), statuszTimeout)
		defer cancel()
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, m := range n.ring.Load().Members() {
			if m.ID == n.self.ID {
				continue
			}
			wg.Add(1)
			go func(m Member) {
				defer wg.Done()
				body, err := n.fetchPeerJSON(ctx, m, "/debug/traces?trace="+q.TraceID)
				if err != nil {
					return // a missing peer only thins the merged tree
				}
				var snap obs.TracesSnapshot
				if err := json.Unmarshal(body, &snap); err != nil {
					return
				}
				for i := range snap.Traces {
					stampNode(&snap.Traces[i], m.ID)
				}
				mu.Lock()
				forest = append(forest, snap.Traces...)
				mu.Unlock()
			}(m)
		}
		wg.Wait()
	}
	tr := n.svc.Tracer()
	writeJSON(w, http.StatusOK, &obs.TracesSnapshot{
		Capacity: tr.Capacity(),
		SlowSec:  tr.SlowThreshold().Seconds(),
		Traces:   obs.StitchTraces(forest),
	})
}

// stampNode labels every span in a tree with the node it was recorded
// on; spans a peer already stamped (nested merges) keep their label.
func stampNode(t *obs.SpanJSON, node string) {
	if t.Node == "" {
		t.Node = node
	}
	for i := range t.Children {
		stampNode(&t.Children[i], node)
	}
}
