package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/wal"
)

// WAL-shipped replication (DESIGN.md §12). The owner side is one
// endpoint, /cluster/wal: seal the active segment on request, then
// stream every sealed segment past the follower's cursor in one
// response — all file descriptors are opened before the status line, so
// a concurrent checkpoint compaction unlinking a file mid-transfer
// cannot tear the stream (the reader drains the old inode). A follower
// whose cursor fell behind compaction gets 410 Gone and installs the
// owner's checkpoint instead (/cluster/checkpoint), then resumes tailing
// at the checkpoint's covered sequence.
//
// The follower side applies each shipped segment through
// serve.IngestBatchReplica — the same walMu-barriered, score-then-append
// ingest pipeline as local traffic, with the original frame payloads
// passed through into the follower's own WAL. Replicated state is
// therefore indistinguishable from locally ingested state: it refits,
// publishes models, checkpoints, and crash-recovers identically, which
// is what makes takeover exactly the PR 5 recovery path.
//
// The apply filter keeps a frame only when the shipping peer owns its
// target and this node follows it. The Owner==peer half is load-bearing
// in symmetric topologies: a peer's WAL also holds records the peer
// replicated from us, and re-applying our own records via their log
// would double-count after window eviction.

// Stream framing: per segment, [seq uint64 LE][size uint64 LE][bytes].
const segFrameHeader = 16

// ActiveSeqHeader carries the owner's active (unsealed) segment sequence
// so the follower can compute exact lag: caught up ⇔ cursor == active-1.
const ActiveSeqHeader = "X-Cluster-Active-Seq"

// handleWALShip serves GET /cluster/wal?after=<seq>&seal=0|1.
func (n *Node) handleWALShip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// The ship side of one replication pass: parented under the follower's
	// poll span via the propagated header. Polls that ship nothing (the
	// steady state, every poll interval) are dropped so the trace ring
	// holds real work, not heartbeats.
	tctx, _ := obs.ContextFromRequest(r)
	span := n.svc.Tracer().StartRemote(serve.StageReplicate, tctx)
	span.SetAttr("side", "ship")
	served := 0
	defer func() {
		span.SetAttr("segments", strconv.Itoa(served))
		if served == 0 {
			span.Drop()
		}
		span.End()
	}()
	after := uint64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad after %q: %v", q, err))
			return
		}
		after = v
	}
	if r.URL.Query().Get("seal") == "1" {
		// Seal the active segment so the response carries everything acked
		// before this poll, bounding replication lag to one poll interval.
		if _, err := n.wal.Rotate(); err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	segs := n.wal.Segments()
	activeSeq := n.wal.Stats().ActiveSeq

	// Gap check: the oldest retained sequence is the oldest sealed segment
	// (or the active one when nothing is sealed). A cursor below it means
	// compaction already removed frames the follower never saw.
	oldest := activeSeq
	if len(segs) > 0 {
		oldest = segs[0].Seq
	}
	if after+1 < oldest {
		w.Header().Set(ActiveSeqHeader, strconv.FormatUint(activeSeq, 10))
		writeErr(w, http.StatusGone, fmt.Sprintf(
			"segments %d..%d compacted away; install the checkpoint", after+1, oldest-1))
		return
	}

	// Open every wanted segment before writing the status line.
	type openSeg struct {
		info wal.SegmentInfo
		f    *os.File
	}
	var open []openSeg
	defer func() {
		for _, s := range open {
			s.f.Close()
		}
	}()
	for _, si := range segs {
		if si.Seq <= after {
			continue
		}
		f, err := n.wal.OpenSegment(si.Seq)
		if err != nil {
			// Compacted between the listing and the open: the frames are in
			// the checkpoint now, so the follower must install it.
			writeErr(w, http.StatusGone, fmt.Sprintf("segment %d compacted mid-request", si.Seq))
			return
		}
		open = append(open, openSeg{info: si, f: f})
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ActiveSeqHeader, strconv.FormatUint(activeSeq, 10))
	w.WriteHeader(http.StatusOK)
	var hdr [segFrameHeader]byte
	for _, s := range open {
		binary.LittleEndian.PutUint64(hdr[0:8], s.info.Seq)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(s.info.Bytes))
		if _, err := w.Write(hdr[:]); err != nil {
			return
		}
		if _, err := io.CopyN(w, s.f, s.info.Bytes); err != nil {
			return
		}
		n.met.segmentsServed.Inc()
		served++
	}
}

// handleCheckpoint serves the catch-up fallback: force a fresh durable
// checkpoint and return its full image.
func (n *Node) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	covered, targets, err := n.svc.CheckpointSnapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &checkpointTransfer{CoveredSeq: covered, Targets: targets})
}

// checkpointTransfer is the /cluster/checkpoint body (the same shape as
// the on-disk checkpoint file).
type checkpointTransfer struct {
	CoveredSeq uint64                   `json:"covered_seq"`
	Targets    []serve.TargetCheckpoint `json:"targets"`
}

// cursorFile persists a replicator's progress next to the WAL segments:
// the highest peer segment whose frames are applied (and durable — the
// cursor is written only after IngestBatchReplica acked, which holds the
// frames in this node's own WAL). Written atomically; a crash between
// apply and cursor write re-applies at most one segment, which the
// dedup window absorbs.
type cursorFile struct {
	Peer string `json:"peer"`
	Seq  uint64 `json:"seq"`
}

// replicator tails one peer's sealed WAL segments.
type replicator struct {
	n          *Node
	peer       Member
	cursorPath string

	mu       sync.Mutex // serializes polls (ticker vs explicit Replicate)
	cursor   uint64
	lag      int
	installs uint64
	errs     uint64

	segBuf    []byte // reusable segment download buffer
	payloads  [][]byte
	arena     []byte // backing bytes for the chunk's frame payloads
	arenaOffs []int  // record i's payload is arena[arenaOffs[i]:arenaOffs[i+1]]
	records   []trace.Attack
}

// applyChunk bounds one IngestBatchReplica call so a large shipped
// segment does not build an unbounded batch.
const applyChunk = 4096

func newReplicator(n *Node, peer Member) (*replicator, error) {
	h := fnv.New64a()
	h.Write([]byte(peer.ID))
	r := &replicator{
		n:          n,
		peer:       peer,
		cursorPath: filepath.Join(n.wal.Dir(), fmt.Sprintf("cluster.%016x.cursor", h.Sum64())),
	}
	if f, err := os.Open(r.cursorPath); err == nil {
		var cf cursorFile
		err := json.NewDecoder(f).Decode(&cf)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: cursor %s corrupt: %w (remove it to re-sync from the peer checkpoint)", r.cursorPath, err)
		}
		if cf.Peer == peer.ID {
			r.cursor = cf.Seq
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: cursor: %w", err)
	}
	return r, nil
}

func (r *replicator) status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Peer:      r.peer.ID,
		CursorSeq: r.cursor,
		LagSegs:   r.lag,
		Installs:  r.installs,
		Errors:    r.errs,
	}
}

func (r *replicator) saveCursor() error {
	return wal.WriteFileAtomic(r.cursorPath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&cursorFile{Peer: r.peer.ID, Seq: r.cursor})
	})
}

// poll runs one tailing pass: seal-and-list on the peer, stream new
// sealed segments, apply each, advance the cursor. Returns the remaining
// lag in segments (0 = fully caught up with the peer's sealed log).
func (r *replicator) poll() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lag, err := r.pollLocked()
	if err != nil {
		r.errs++
	}
	r.lag = lag
	return lag, err
}

func (r *replicator) pollLocked() (int, error) {
	// One poll = one replication trace: this root span's context travels
	// on the request header, so the owner's ship span parents under it.
	// Empty polls (nothing new to apply — the steady state) are dropped
	// from the trace ring; the stage histogram skips them with it.
	span := r.n.svc.Tracer().Start(serve.StageReplicate)
	span.SetAttr("side", "poll")
	span.SetAttr("peer", r.peer.ID)
	applied := 0
	defer func() {
		span.SetAttr("segments", strconv.Itoa(applied))
		if applied == 0 {
			span.Drop()
		}
		span.End()
	}()
	url := fmt.Sprintf("%s/cluster/wal?after=%d&seal=1", r.peer.URL, r.cursor)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 1, err
	}
	req.Header.Set(obs.TraceHeader, span.Context().String())
	resp, err := r.n.client.Do(req)
	if err != nil {
		return 1, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		applied++ // a checkpoint install is real replication work: keep the trace
		span.SetAttr("checkpoint_install", "1")
		return r.installCheckpoint()
	default:
		return 1, fmt.Errorf("peer answered HTTP %d", resp.StatusCode)
	}
	activeSeq, _ := strconv.ParseUint(resp.Header.Get(ActiveSeqHeader), 10, 64)

	var hdr [segFrameHeader]byte
	for {
		_, err := io.ReadFull(resp.Body, hdr[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return r.lagFrom(activeSeq), fmt.Errorf("segment stream: %w", err)
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		size := binary.LittleEndian.Uint64(hdr[8:16])
		if size > uint64(wal.MaxRecordBytes)+uint64(wal.DefaultSegmentBytes) {
			return r.lagFrom(activeSeq), fmt.Errorf("segment %d implausibly large: %d bytes", seq, size)
		}
		if uint64(cap(r.segBuf)) < size {
			r.segBuf = make([]byte, size)
		}
		r.segBuf = r.segBuf[:size]
		if _, err := io.ReadFull(resp.Body, r.segBuf); err != nil {
			return r.lagFrom(activeSeq), fmt.Errorf("segment %d: %w", seq, err)
		}
		if err := r.applySegment(seq, r.segBuf); err != nil {
			return r.lagFrom(activeSeq), err
		}
		r.cursor = seq
		if err := r.saveCursor(); err != nil {
			return r.lagFrom(activeSeq), err
		}
		r.n.met.replSegments.Inc()
		applied++
	}
	return r.lagFrom(activeSeq), nil
}

// lagFrom converts the peer's active sequence into remaining sealed
// segments past the cursor.
func (r *replicator) lagFrom(activeSeq uint64) int {
	if activeSeq == 0 || r.cursor+1 >= activeSeq {
		return 0
	}
	return int(activeSeq - 1 - r.cursor)
}

// applySegment scans one shipped segment (torn-tail tolerant — a sealed
// segment inherited from a crashed owner process may end mid-frame) and
// applies the frames this node follows for the peer.
func (r *replicator) applySegment(seq uint64, seg []byte) error {
	ring := r.n.ring.Load()
	selfID := r.n.self.ID
	flush := func() error {
		if len(r.records) == 0 {
			return nil
		}
		// Materialize payload subslices only now: the arena has stopped
		// growing, so the views cannot be invalidated by a reallocation.
		r.payloads = r.payloads[:0]
		for i := 0; i+1 < len(r.arenaOffs); i++ {
			r.payloads = append(r.payloads, r.arena[r.arenaOffs[i]:r.arenaOffs[i+1]])
		}
		res, err := r.n.svc.IngestBatchReplica(r.records, func(i int) []byte { return r.payloads[i] })
		r.n.met.replRecords.Add(uint64(res.Ingested))
		r.records = r.records[:0]
		r.payloads = r.payloads[:0]
		r.arena = r.arena[:0]
		r.arenaOffs = append(r.arenaOffs[:0], 0)
		if err != nil {
			return fmt.Errorf("apply segment %d: %w", seq, err)
		}
		return nil
	}
	r.arenaOffs = append(r.arenaOffs[:0], 0)
	var scanErr error
	_, _, _, err := wal.ScanSegment(bytes.NewReader(seg), func(payload []byte) error {
		var a trace.Attack
		if trace.IsBinaryRecord(payload) {
			if err := trace.UnmarshalRecord(payload, &a); err != nil {
				return fmt.Errorf("segment %d holds an undecodable record: %w", seq, err)
			}
		} else if err := json.Unmarshal(payload, &a); err != nil {
			return fmt.Errorf("segment %d holds an undecodable record: %w", seq, err)
		}
		owner, follower := ring.OwnerFollower(a.TargetAS)
		if owner.ID != r.peer.ID || follower.ID != selfID {
			return nil
		}
		r.arena = append(r.arena, payload...)
		r.arenaOffs = append(r.arenaOffs, len(r.arena))
		r.records = append(r.records, a)
		if len(r.records) >= applyChunk {
			return flush()
		}
		return nil
	})
	if err != nil {
		scanErr = err
	}
	if ferr := flush(); ferr != nil && scanErr == nil {
		scanErr = ferr
	}
	return scanErr
}

// installCheckpoint is the 410 fallback: fetch the peer's checkpoint,
// keep the targets this node follows for that peer, merge them into the
// store, and resume tailing at the checkpoint's covered sequence.
func (r *replicator) installCheckpoint() (int, error) {
	resp, err := r.n.client.Get(r.peer.URL + "/cluster/checkpoint")
	if err != nil {
		return 1, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 1, fmt.Errorf("checkpoint fetch: HTTP %d", resp.StatusCode)
	}
	var ct checkpointTransfer
	if err := json.NewDecoder(resp.Body).Decode(&ct); err != nil {
		return 1, fmt.Errorf("checkpoint fetch: %w", err)
	}
	ring := r.n.ring.Load()
	selfID := r.n.self.ID
	kept, err := r.n.svc.InstallCheckpoint(ct.Targets, func(tc *serve.TargetCheckpoint) bool {
		owner, follower := ring.OwnerFollower(tc.AS)
		return owner.ID == r.peer.ID && follower.ID == selfID
	})
	if err != nil {
		return 1, err
	}
	r.cursor = ct.CoveredSeq
	if err := r.saveCursor(); err != nil {
		return 1, err
	}
	r.installs++
	r.n.met.ckptInstalls.Inc()
	r.n.logger.Info("installed peer checkpoint", "component", "cluster",
		"peer", r.peer.ID, "targets", kept, "covered_seq", ct.CoveredSeq)
	return 0, nil
}
