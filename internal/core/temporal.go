package core

import (
	"errors"
	"time"

	"repro/internal/arima"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Temporal is the paper's temporal model (§IV): per botnet family, ARIMA
// models over the family's chronological attack series — bot magnitude,
// launch hour, day of month, and inter-launching time. Series too short or
// degenerate for ARIMA fall back to their training mean, keeping the
// model total.
type Temporal struct {
	Family string

	magnitude *seriesModel
	hour      *seriesModel
	day       *seriesModel
	interval  *seriesModel

	lastStart time.Time
}

// TemporalConfig bounds the ARIMA order search.
type TemporalConfig struct {
	MaxP, MaxD, MaxQ int
}

func (c TemporalConfig) withDefaults() TemporalConfig {
	if c.MaxP < 1 {
		c.MaxP = 3
	}
	if c.MaxD < 0 {
		c.MaxD = 1
	}
	if c.MaxQ < 0 {
		c.MaxQ = 1
	}
	return c
}

// seriesModel is an ARIMA model with a mean fallback.
type seriesModel struct {
	m    *arima.Model
	mean float64
	n    int
}

func fitSeries(xs []float64, cfg TemporalConfig) *seriesModel {
	sm := &seriesModel{mean: stats.Mean(xs), n: len(xs)}
	if len(xs) >= 12 {
		if m, err := arima.SelectOrder(xs, cfg.MaxP, cfg.MaxD, cfg.MaxQ); err == nil {
			sm.m = m
		}
	}
	return sm
}

func (sm *seriesModel) predict() float64 {
	if sm == nil || sm.n == 0 {
		return 0
	}
	if sm.m != nil {
		if v, err := sm.m.PredictNext(); err == nil {
			return v
		}
	}
	return sm.mean
}

func (sm *seriesModel) update(x float64) {
	if sm == nil {
		return
	}
	sm.mean = (sm.mean*float64(sm.n) + x) / float64(sm.n+1)
	sm.n++
	if sm.m != nil {
		sm.m.Update(x)
	}
}

// FitTemporal estimates the temporal model on one family's chronological
// attacks.
func FitTemporal(family string, attacks []trace.Attack, cfg TemporalConfig) (*Temporal, error) {
	if len(attacks) < 3 {
		return nil, errors.New("core: temporal model needs at least 3 attacks")
	}
	cfg = cfg.withDefaults()
	t := &Temporal{Family: family}

	mags := make([]float64, len(attacks))
	hours := make([]float64, len(attacks))
	days := make([]float64, len(attacks))
	for i := range attacks {
		mags[i] = float64(attacks[i].Magnitude())
		hours[i] = float64(attacks[i].Hour())
		days[i] = float64(attacks[i].Day())
	}
	intervals := make([]float64, 0, len(attacks)-1)
	for i := 1; i < len(attacks); i++ {
		intervals = append(intervals, attacks[i].Start.Sub(attacks[i-1].Start).Seconds())
	}

	t.magnitude = fitSeries(mags, cfg)
	t.hour = fitSeries(hours, cfg)
	t.day = fitSeries(days, cfg)
	t.interval = fitSeries(intervals, cfg)
	t.lastStart = attacks[len(attacks)-1].Start
	return t, nil
}

// PredictMagnitude forecasts the next attack's bot magnitude.
func (t *Temporal) PredictMagnitude() float64 { return t.magnitude.predict() }

// PredictHour forecasts the next attack's launch hour, clamped to [0, 24).
func (t *Temporal) PredictHour() float64 { return clamp(t.hour.predict(), 0, 23.999) }

// PredictDay forecasts the next attack's day of month, clamped to [1, 31].
func (t *Temporal) PredictDay() float64 { return clamp(t.day.predict(), 1, 31) }

// PredictInterval forecasts the seconds until the family's next attack
// (never negative).
func (t *Temporal) PredictInterval() float64 {
	v := t.interval.predict()
	if v < 0 {
		return 0
	}
	return v
}

// PredictNextStart forecasts the next attack's start time from the last
// observed launch plus the predicted interval.
func (t *Temporal) PredictNextStart() time.Time {
	return t.lastStart.Add(time.Duration(t.PredictInterval() * float64(time.Second)))
}

// Observe feeds a newly observed attack into all series (walk-forward).
func (t *Temporal) Observe(a *trace.Attack) {
	t.magnitude.update(float64(a.Magnitude()))
	t.hour.update(float64(a.Hour()))
	t.day.update(float64(a.Day()))
	if !t.lastStart.IsZero() {
		gap := a.Start.Sub(t.lastStart).Seconds()
		if gap >= 0 {
			t.interval.update(gap)
		}
	}
	t.lastStart = a.Start
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
