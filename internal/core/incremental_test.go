package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/astopo"
)

func TestIncrementalTemporalTracksFullRefit(t *testing.T) {
	attacks := mkTestAttacks(160, "F", 5)
	prefix, tail := attacks[:140], attacks[140:]

	prev, err := FitTemporal("F", prefix, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := IncrementalTemporal(prev, tail, 6)
	if err != nil {
		t.Fatalf("IncrementalTemporal on a stationary continuation: %v", err)
	}
	full, err := FitTemporal("F", attacks, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// The previous generation must stay untouched (its lastStart still
	// points at the prefix).
	if !prev.PredictNextStart().Before(inc.PredictNextStart()) {
		t.Fatalf("fold-in mutated or failed to advance lastStart")
	}
	// Forecast drift vs the full refit stays bounded on every measure.
	if d := relDiff(inc.PredictMagnitude(), full.PredictMagnitude()); d > 0.35 {
		t.Fatalf("magnitude drift %.3f (inc %v vs full %v)", d, inc.PredictMagnitude(), full.PredictMagnitude())
	}
	if d := math.Abs(inc.PredictHour() - full.PredictHour()); d > 6 {
		t.Fatalf("hour drift %v (inc %v vs full %v)", d, inc.PredictHour(), full.PredictHour())
	}
	if d := relDiff(inc.PredictInterval(), full.PredictInterval()); d > 0.5 {
		t.Fatalf("interval drift %.3f (inc %v vs full %v)", d, inc.PredictInterval(), full.PredictInterval())
	}
}

func TestIncrementalTemporalFlagsRegimeChange(t *testing.T) {
	attacks := mkTestAttacks(140, "F", 11)
	prev, err := FitTemporal("F", attacks, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A magnitude regime two orders above the fitted one must abort the
	// incremental path.
	tail := mkTestAttacks(24, "F", 12)
	last := attacks[len(attacks)-1].Start
	for i := range tail {
		tail[i].Start = last.Add(time.Duration(i+1) * 6 * time.Hour)
		tail[i].Bots = make([]astopo.IPv4, 5000+i)
	}
	if _, err := IncrementalTemporal(prev, tail, 4); err == nil {
		t.Fatalf("IncrementalTemporal accepted a magnitude regime change")
	}
}

func TestIncrementalSpatialTracksFullRefit(t *testing.T) {
	attacks := mkTestAttacks(120, "F", 21)
	prefix, tail := attacks[:100], attacks[100:]
	cfg := SpatialConfig{Delays: []int{2}, Hidden: []int{3}, Seed: 9}

	prev, err := FitSpatial(7, prefix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := IncrementalSpatial(prev, tail, 40, 6)
	if err != nil {
		t.Fatalf("IncrementalSpatial on a stationary continuation: %v", err)
	}
	full, err := FitSpatial(7, attacks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(inc.PredictDuration(), full.PredictDuration()); d > 0.5 {
		t.Fatalf("duration drift %.3f (inc %v vs full %v)", d, inc.PredictDuration(), full.PredictDuration())
	}
	if h := inc.PredictHour(); h < 0 || h >= 24 {
		t.Fatalf("hour prediction %v out of range", h)
	}
	if d := inc.PredictDay(); d < 1 || d > 31 {
		t.Fatalf("day prediction %v out of range", d)
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (math.Abs(b) + 1)
}
