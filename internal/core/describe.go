package core

import "repro/internal/astopo"

// Model descriptors: compact, JSON-friendly summaries of what a fitted
// model actually is — which engine engaged (ARIMA/NAR vs. the mean
// fallback), its selected structure, and how many observations it holds.
// The online serving layer attaches these to forecasts and metrics so an
// operator can tell a real model from a cold fallback without loading the
// snapshot in a debugger.

// SeriesInfo describes one univariate series model inside Temporal.
type SeriesInfo struct {
	// Kind is "arima" when the ARIMA engine engaged, "mean" for the
	// training-mean fallback.
	Kind string `json:"kind"`
	// P, D, Q are the selected ARIMA order (zero when Kind is "mean").
	P int `json:"p,omitempty"`
	D int `json:"d,omitempty"`
	Q int `json:"q,omitempty"`
	// Observations is the number of values the model has absorbed (fit +
	// walk-forward updates).
	Observations int `json:"observations"`
}

// TemporalInfo describes a fitted temporal model.
type TemporalInfo struct {
	Family    string     `json:"family"`
	Magnitude SeriesInfo `json:"magnitude"`
	Hour      SeriesInfo `json:"hour"`
	Day       SeriesInfo `json:"day"`
	Interval  SeriesInfo `json:"interval"`
}

func (sm *seriesModel) describe() SeriesInfo {
	if sm == nil {
		return SeriesInfo{Kind: "mean"}
	}
	if sm.m != nil {
		return SeriesInfo{
			Kind: "arima",
			P:    sm.m.P, D: sm.m.D, Q: sm.m.Q,
			Observations: sm.m.Observations(),
		}
	}
	return SeriesInfo{Kind: "mean", Observations: sm.n}
}

// Describe summarizes the temporal model's per-series engines.
func (t *Temporal) Describe() TemporalInfo {
	return TemporalInfo{
		Family:    t.Family,
		Magnitude: t.magnitude.describe(),
		Hour:      t.hour.describe(),
		Day:       t.day.describe(),
		Interval:  t.interval.describe(),
	}
}

// NARInfo describes one univariate series model inside Spatial.
type NARInfo struct {
	// Kind is "nar" when the network engaged, "mean" for the fallback.
	Kind string `json:"kind"`
	// Delays and Hidden are the grid-searched topology (zero for "mean").
	Delays int `json:"delays,omitempty"`
	Hidden int `json:"hidden,omitempty"`
	// Observations counts the values absorbed by the mean tracker (the NAR
	// itself keeps only its delay tail).
	Observations int `json:"observations"`
}

// SpatialInfo describes a fitted spatial model.
type SpatialInfo struct {
	AS       astopo.AS `json:"as"`
	Duration NARInfo   `json:"duration"`
	Hour     NARInfo   `json:"hour"`
	Day      NARInfo   `json:"day"`
}

func (nm *narModel) describe() NARInfo {
	if nm == nil {
		return NARInfo{Kind: "mean"}
	}
	if nm.m != nil {
		return NARInfo{
			Kind:         "nar",
			Delays:       nm.m.Delays,
			Hidden:       nm.m.HiddenNodes(),
			Observations: nm.n,
		}
	}
	return NARInfo{Kind: "mean", Observations: nm.n}
}

// Describe summarizes the spatial model's per-series engines.
func (s *Spatial) Describe() SpatialInfo {
	return SpatialInfo{
		AS:       s.AS,
		Duration: s.duration.describe(),
		Hour:     s.hour.describe(),
		Day:      s.day.describe(),
	}
}

// TreeInfo describes one model tree inside Spatiotemporal.
type TreeInfo struct {
	Leaves int `json:"leaves"`
	Depth  int `json:"depth"`
	Nodes  int `json:"nodes"`
}

// SpatiotemporalInfo describes a fitted spatiotemporal model.
type SpatiotemporalInfo struct {
	Hour      TreeInfo `json:"hour"`
	Day       TreeInfo `json:"day"`
	Duration  TreeInfo `json:"duration"`
	Magnitude TreeInfo `json:"magnitude"`
}

// Describe summarizes the four model trees.
func (st *Spatiotemporal) Describe() SpatiotemporalInfo {
	info := func(t interface {
		Leaves() int
		Depth() int
		Nodes() int
	}) TreeInfo {
		return TreeInfo{Leaves: t.Leaves(), Depth: t.Depth(), Nodes: t.Nodes()}
	}
	return SpatiotemporalInfo{
		Hour:      info(st.Hour),
		Day:       info(st.Day),
		Duration:  info(st.Duration),
		Magnitude: info(st.Magnitude),
	}
}
