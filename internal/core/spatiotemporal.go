package core

import (
	"errors"

	"repro/internal/cart"
)

// Spatiotemporal is the paper's spatiotemporal model (§VI): a regression
// model tree (CART with multivariate-linear leaves) over the outputs of
// the temporal and spatial models plus target-local context, predicting —
// per target — the next attack's hour, day, duration, and magnitude. The
// tree mirrors the paper's construction: node N_tmp carries the temporal
// hourly prediction, N_spa the spatial one, N_int the temporal interval
// prediction, and the tree is pruned with the 88% standard-deviation rule.
type Spatiotemporal struct {
	Hour      *cart.Tree
	Day       *cart.Tree
	Duration  *cart.Tree
	Magnitude *cart.Tree
}

// STFeatures is one feature vector fed to the model tree: the outputs of
// the temporal and spatial models for a given attack slot, plus the
// target-local context available to the victim.
type STFeatures struct {
	// Temporal model outputs (family-level).
	TmpHour     float64 // N_tmp: predicted hour
	TmpDay      float64 // predicted day of month
	TmpInterval float64 // N_int: predicted inter-launch seconds
	TmpMag      float64 // predicted magnitude

	// Spatial model outputs (target-network level).
	SpaHour float64 // N_spa: predicted hour
	SpaDay  float64 // predicted day of month
	SpaDur  float64 // predicted duration (seconds)

	// Target-local context.
	PrevHour   float64 // hour of the previous attack on this target
	PrevDay    float64 // day of the previous attack on this target
	PrevGapSec float64 // seconds since the previous attack on this target
	NextDueDay float64 // day-of-month implied by the target's revisit cadence
	AvgMag     float64 // mean magnitude over the target's history
	TargetAS   float64 // T_l, the target's AS number
}

// Vector flattens the features in a fixed order.
func (f *STFeatures) Vector() []float64 {
	return []float64{
		f.TmpHour, f.TmpDay, f.TmpInterval, f.TmpMag,
		f.SpaHour, f.SpaDay, f.SpaDur,
		f.PrevHour, f.PrevDay, f.PrevGapSec, f.NextDueDay, f.AvgMag, f.TargetAS,
	}
}

// STSample is one training observation: features for an attack slot and
// the attack's realized hour, day, duration, and magnitude.
type STSample struct {
	F    STFeatures
	Hour float64
	Day  float64
	Dur  float64
	Mag  float64
}

// STConfig configures the model tree induction. The zero value applies
// the paper's defaults (88% standard-deviation retention, MLR leaves).
type STConfig struct {
	Tree cart.Config
}

func (c STConfig) withDefaults() STConfig {
	if c.Tree.StdDevRetain == 0 {
		c.Tree.StdDevRetain = 0.88
	}
	if c.Tree.MinLeaf == 0 {
		// Leaves must hold enough samples to fit the 13-feature MLR
		// (regress needs n >= p+2); smaller leaves silently degrade to
		// constant predictors.
		c.Tree.MinLeaf = 16
	}
	if c.Tree.MaxDepth == 0 {
		c.Tree.MaxDepth = 10
	}
	return c
}

// FitSpatiotemporal grows the four model trees from training samples.
func FitSpatiotemporal(samples []STSample, cfg STConfig) (*Spatiotemporal, error) {
	if len(samples) < 4 {
		return nil, errors.New("core: spatiotemporal model needs at least 4 samples")
	}
	cfg = cfg.withDefaults()
	rows := make([][]float64, len(samples))
	hours := make([]float64, len(samples))
	days := make([]float64, len(samples))
	durs := make([]float64, len(samples))
	mags := make([]float64, len(samples))
	for i := range samples {
		rows[i] = samples[i].F.Vector()
		hours[i] = samples[i].Hour
		days[i] = samples[i].Day
		durs[i] = samples[i].Dur
		mags[i] = samples[i].Mag
	}
	var st Spatiotemporal
	var err error
	if st.Hour, err = cart.Fit(rows, hours, cfg.Tree); err != nil {
		return nil, err
	}
	if st.Day, err = cart.Fit(rows, days, cfg.Tree); err != nil {
		return nil, err
	}
	if st.Duration, err = cart.Fit(rows, durs, cfg.Tree); err != nil {
		return nil, err
	}
	if st.Magnitude, err = cart.Fit(rows, mags, cfg.Tree); err != nil {
		return nil, err
	}
	return &st, nil
}

// PredictHour predicts the next attack's launch hour, clamped to [0, 24).
func (st *Spatiotemporal) PredictHour(f *STFeatures) float64 {
	return clamp(st.Hour.Predict(f.Vector()), 0, 23.999)
}

// PredictDay predicts the next attack's day of month, clamped to [1, 31].
func (st *Spatiotemporal) PredictDay(f *STFeatures) float64 {
	return clamp(st.Day.Predict(f.Vector()), 1, 31)
}

// PredictDuration predicts the next attack's duration in seconds.
func (st *Spatiotemporal) PredictDuration(f *STFeatures) float64 {
	v := st.Duration.Predict(f.Vector())
	if v < 0 {
		return 0
	}
	return v
}

// PredictMagnitude predicts the next attack's bot magnitude.
func (st *Spatiotemporal) PredictMagnitude(f *STFeatures) float64 {
	v := st.Magnitude.Predict(f.Vector())
	if v < 0 {
		return 0
	}
	return v
}
