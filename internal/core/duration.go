package core

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// DurationModel realizes the paper's remaining-duration output variable
// (D^d_{t_i})_j — "the remaining time left at time t_i of the j-th DDoS
// attack observed by the target" (Table II). Attack durations are fitted
// as a lognormal (their empirical shape in the trace data), and the
// remaining time of an in-progress attack is the conditional expectation
// E[D - t | D > t] of that lognormal.
type DurationModel struct {
	// Mu and Sigma are the location and scale of log-duration.
	Mu, Sigma float64
	// N is the number of durations the model was fitted on.
	N int
}

// FitDurationModel estimates the lognormal by maximum likelihood on the
// log durations. Non-positive durations are rejected.
func FitDurationModel(durations []float64) (*DurationModel, error) {
	if len(durations) < 3 {
		return nil, errors.New("core: duration model needs at least 3 observations")
	}
	logs := make([]float64, len(durations))
	for i, d := range durations {
		if d <= 0 {
			return nil, errors.New("core: durations must be positive")
		}
		logs[i] = math.Log(d)
	}
	mu := stats.Mean(logs)
	sigma := math.Sqrt(stats.PopVariance(logs))
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	return &DurationModel{Mu: mu, Sigma: sigma, N: len(durations)}, nil
}

// Mean returns the unconditional expected duration exp(mu + sigma^2/2).
func (m *DurationModel) Mean() float64 {
	return math.Exp(m.Mu + m.Sigma*m.Sigma/2)
}

// Quantile returns the p-th duration quantile (0 < p < 1).
func (m *DurationModel) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	z := math.Sqrt2 * math.Erfinv(2*p-1)
	return math.Exp(m.Mu + m.Sigma*z)
}

// Survival returns P(D > t), the probability an attack lasts beyond t
// seconds.
func (m *DurationModel) Survival(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return 1 - stats.NormalCDF(math.Log(t), m.Mu, m.Sigma)
}

// ExpectedRemaining returns E[D - t | D > t]: the expected remaining
// seconds of an attack that has already run for t seconds. For t <= 0 it
// returns the unconditional mean. When the conditioning event has
// vanishing probability (t far in the tail) it degrades gracefully to the
// hazard-free limit sigma^2-scaled tail behavior rather than dividing by
// zero.
func (m *DurationModel) ExpectedRemaining(t float64) float64 {
	if t <= 0 {
		return m.Mean()
	}
	lt := math.Log(t)
	surv := m.Survival(t)
	if surv < 1e-12 {
		// Deep tail: the lognormal's mean residual life grows roughly
		// linearly in t / log t; approximate with the last finite ratio.
		surv = 1e-12
	}
	// E[D · 1{D>t}] = exp(mu + sigma^2/2) * Phi(sigma - (ln t - mu)/sigma).
	upper := 1 - stats.NormalCDF((lt-m.Mu)/m.Sigma-m.Sigma, 0, 1)
	conditional := m.Mean() * upper / surv
	rem := conditional - t
	if rem < 0 {
		return 0
	}
	return rem
}

// PredictEnd returns the expected total duration of an attack that has
// been running for elapsed seconds (elapsed + expected remaining).
func (m *DurationModel) PredictEnd(elapsed float64) float64 {
	return elapsed + m.ExpectedRemaining(elapsed)
}
