package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func lognormalSample(n int, mu, sigma float64, seed uint64) []float64 {
	s := stats.NewSampler(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.LogNormal(mu, sigma)
	}
	return out
}

func TestFitDurationModelRecoversParams(t *testing.T) {
	const mu, sigma = 7.0, 0.6
	durs := lognormalSample(20000, mu, sigma, 111)
	m, err := FitDurationModel(durs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-mu) > 0.02 {
		t.Errorf("mu = %v, want ~%v", m.Mu, mu)
	}
	if math.Abs(m.Sigma-sigma) > 0.02 {
		t.Errorf("sigma = %v, want ~%v", m.Sigma, sigma)
	}
	wantMean := math.Exp(mu + sigma*sigma/2)
	if math.Abs(m.Mean()-wantMean)/wantMean > 0.02 {
		t.Errorf("mean = %v, want ~%v", m.Mean(), wantMean)
	}
}

func TestFitDurationModelValidation(t *testing.T) {
	if _, err := FitDurationModel([]float64{1, 2}); err == nil {
		t.Error("too few durations should error")
	}
	if _, err := FitDurationModel([]float64{1, -2, 3}); err == nil {
		t.Error("negative duration should error")
	}
	// Constant durations must not blow up (sigma floored).
	m, err := FitDurationModel([]float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-100) > 1 {
		t.Errorf("constant-duration mean = %v", m.Mean())
	}
}

func TestQuantileAndSurvival(t *testing.T) {
	m := &DurationModel{Mu: 7, Sigma: 0.6, N: 100}
	// Median of a lognormal is exp(mu).
	if med := m.Quantile(0.5); math.Abs(med-math.Exp(7)) > 1 {
		t.Errorf("median = %v, want ~%v", med, math.Exp(7))
	}
	if m.Quantile(0) != 0 || !math.IsInf(m.Quantile(1), 1) {
		t.Error("quantile boundary behavior wrong")
	}
	// Survival at the median is 0.5; monotone decreasing.
	if s := m.Survival(math.Exp(7)); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("survival at median = %v, want 0.5", s)
	}
	if m.Survival(0) != 1 {
		t.Error("survival at 0 should be 1")
	}
	prev := 1.0
	for _, tt := range []float64{100, 500, 1000, 3000, 10000} {
		s := m.Survival(tt)
		if s > prev+1e-12 {
			t.Fatalf("survival not monotone at %v", tt)
		}
		prev = s
	}
	// Quantile and survival are inverses.
	q := m.Quantile(0.8)
	if s := m.Survival(q); math.Abs(s-0.2) > 1e-9 {
		t.Errorf("survival(quantile(0.8)) = %v, want 0.2", s)
	}
}

func TestExpectedRemainingMatchesMonteCarlo(t *testing.T) {
	const mu, sigma = 7.0, 0.6
	m := &DurationModel{Mu: mu, Sigma: sigma, N: 1000}
	durs := lognormalSample(200000, mu, sigma, 113)
	for _, elapsed := range []float64{300, 1000, 2000} {
		var sum float64
		var n int
		for _, d := range durs {
			if d > elapsed {
				sum += d - elapsed
				n++
			}
		}
		if n < 100 {
			t.Fatalf("too few survivors at t=%v", elapsed)
		}
		mc := sum / float64(n)
		got := m.ExpectedRemaining(elapsed)
		if math.Abs(got-mc)/mc > 0.05 {
			t.Errorf("t=%v: analytic %v vs Monte Carlo %v", elapsed, got, mc)
		}
	}
	// t=0 returns the unconditional mean.
	if got := m.ExpectedRemaining(0); math.Abs(got-m.Mean()) > 1e-9 {
		t.Errorf("remaining at 0 = %v, want mean %v", got, m.Mean())
	}
	// Lognormal mean residual life dips near the mode but grows in the
	// tail (heavier than exponential).
	if m.ExpectedRemaining(20000) <= m.ExpectedRemaining(2000) {
		t.Error("lognormal mean residual life should grow in the tail")
	}
	// Deep tail must stay finite and nonnegative.
	deep := m.ExpectedRemaining(1e9)
	if deep < 0 || math.IsNaN(deep) || math.IsInf(deep, 0) {
		t.Errorf("deep-tail remaining = %v", deep)
	}
}

func TestPredictEnd(t *testing.T) {
	m := &DurationModel{Mu: 7, Sigma: 0.6, N: 10}
	elapsed := 500.0
	if got := m.PredictEnd(elapsed); got < elapsed {
		t.Errorf("predicted end %v before elapsed %v", got, elapsed)
	}
}

func TestDurationModelOnSimulatedFamily(t *testing.T) {
	attacks := mkTestAttacks(200, "F", 115)
	durs := make([]float64, len(attacks))
	for i := range attacks {
		durs[i] = attacks[i].DurationSec
	}
	m, err := FitDurationModel(durs)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted mean should be in the ballpark of the sample mean.
	sampleMean := stats.Mean(durs)
	if math.Abs(m.Mean()-sampleMean)/sampleMean > 0.25 {
		t.Errorf("fitted mean %v vs sample mean %v", m.Mean(), sampleMean)
	}
}
