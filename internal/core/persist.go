package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/arima"
	"repro/internal/astopo"
	"repro/internal/nn"
)

// Model persistence: fitted temporal, spatial, and spatiotemporal models
// serialize to JSON so they can be trained offline and shipped to a
// deployment (see cmd/ddospredict's -models flag).

type seriesModelJSON struct {
	ARIMA *arima.Model `json:"arima,omitempty"`
	Mean  float64      `json:"mean"`
	N     int          `json:"n"`
}

func (sm *seriesModel) toJSON() *seriesModelJSON {
	if sm == nil {
		return nil
	}
	return &seriesModelJSON{ARIMA: sm.m, Mean: sm.mean, N: sm.n}
}

func (j *seriesModelJSON) toModel() *seriesModel {
	if j == nil {
		return nil
	}
	return &seriesModel{m: j.ARIMA, mean: j.Mean, n: j.N}
}

type temporalJSON struct {
	Family    string           `json:"family"`
	Magnitude *seriesModelJSON `json:"magnitude"`
	Hour      *seriesModelJSON `json:"hour"`
	Day       *seriesModelJSON `json:"day"`
	Interval  *seriesModelJSON `json:"interval"`
	LastStart time.Time        `json:"last_start"`
}

// MarshalJSON serializes the fitted temporal model.
func (t *Temporal) MarshalJSON() ([]byte, error) {
	return json.Marshal(temporalJSON{
		Family:    t.Family,
		Magnitude: t.magnitude.toJSON(),
		Hour:      t.hour.toJSON(),
		Day:       t.day.toJSON(),
		Interval:  t.interval.toJSON(),
		LastStart: t.lastStart,
	})
}

// UnmarshalJSON restores a temporal model serialized by MarshalJSON.
func (t *Temporal) UnmarshalJSON(data []byte) error {
	var j temporalJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("core: unmarshal temporal: %w", err)
	}
	if j.Magnitude == nil || j.Hour == nil || j.Day == nil || j.Interval == nil {
		return errors.New("core: unmarshal temporal: missing series model")
	}
	t.Family = j.Family
	t.magnitude = j.Magnitude.toModel()
	t.hour = j.Hour.toModel()
	t.day = j.Day.toModel()
	t.interval = j.Interval.toModel()
	t.lastStart = j.LastStart
	return nil
}

type narModelJSON struct {
	NAR  *nn.NAR `json:"nar,omitempty"`
	Mean float64 `json:"mean"`
	N    int     `json:"n"`
}

func (nm *narModel) toJSON() *narModelJSON {
	if nm == nil {
		return nil
	}
	return &narModelJSON{NAR: nm.m, Mean: nm.mean, N: nm.n}
}

func (j *narModelJSON) toModel() *narModel {
	if j == nil {
		return nil
	}
	return &narModel{m: j.NAR, mean: j.Mean, n: j.N}
}

type spatialJSON struct {
	AS       astopo.AS     `json:"as"`
	Duration *narModelJSON `json:"duration"`
	Hour     *narModelJSON `json:"hour"`
	Day      *narModelJSON `json:"day"`
}

// MarshalJSON serializes the fitted spatial model.
func (s *Spatial) MarshalJSON() ([]byte, error) {
	return json.Marshal(spatialJSON{
		AS:       s.AS,
		Duration: s.duration.toJSON(),
		Hour:     s.hour.toJSON(),
		Day:      s.day.toJSON(),
	})
}

// UnmarshalJSON restores a spatial model serialized by MarshalJSON.
func (s *Spatial) UnmarshalJSON(data []byte) error {
	var j spatialJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("core: unmarshal spatial: %w", err)
	}
	if j.Duration == nil || j.Hour == nil || j.Day == nil {
		return errors.New("core: unmarshal spatial: missing series model")
	}
	s.AS = j.AS
	s.duration = j.Duration.toModel()
	s.hour = j.Hour.toModel()
	s.day = j.Day.toModel()
	return nil
}

// Spatiotemporal's fields (four cart.Tree pointers) are exported and
// serialize directly with encoding/json; no custom methods are needed.
