package core

import (
	"encoding/json"
	"math"
	"testing"
)

func TestTemporalJSONRoundTrip(t *testing.T) {
	attacks := mkTestAttacks(150, "F", 71)
	m, err := FitTemporal("F", attacks, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Temporal
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Family != "F" {
		t.Error("family lost")
	}
	// A reloaded model must predict identically.
	pairs := [][2]float64{
		{m.PredictMagnitude(), back.PredictMagnitude()},
		{m.PredictHour(), back.PredictHour()},
		{m.PredictDay(), back.PredictDay()},
		{m.PredictInterval(), back.PredictInterval()},
	}
	for i, p := range pairs {
		if math.Abs(p[0]-p[1]) > 1e-9 {
			t.Errorf("prediction %d differs after round trip: %v vs %v", i, p[0], p[1])
		}
	}
	if !m.PredictNextStart().Equal(back.PredictNextStart()) {
		t.Error("next-start prediction differs")
	}
	// And keep behaving identically under walk-forward updates.
	a := attacks[len(attacks)-1]
	m.Observe(&a)
	back.Observe(&a)
	if math.Abs(m.PredictMagnitude()-back.PredictMagnitude()) > 1e-9 {
		t.Error("post-observe predictions diverge")
	}
}

func TestSpatialJSONRoundTrip(t *testing.T) {
	attacks := mkTestAttacks(100, "F", 73)
	m, err := FitSpatial(7, attacks, SpatialConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Spatial
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AS != 7 {
		t.Error("AS lost")
	}
	if math.Abs(m.PredictDuration()-back.PredictDuration()) > 1e-9 {
		t.Error("duration prediction differs")
	}
	if math.Abs(m.PredictHour()-back.PredictHour()) > 1e-9 {
		t.Error("hour prediction differs")
	}
}

func TestSpatiotemporalJSONRoundTrip(t *testing.T) {
	samples := stSamples(200, 75)
	st, err := FitSpatiotemporal(samples, STConfig{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Spatiotemporal
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:20] {
		if math.Abs(st.PredictHour(&s.F)-back.PredictHour(&s.F)) > 1e-9 {
			t.Fatal("hour tree predictions differ after round trip")
		}
		if math.Abs(st.PredictDuration(&s.F)-back.PredictDuration(&s.F)) > 1e-9 {
			t.Fatal("duration tree predictions differ after round trip")
		}
	}
}

func TestTemporalUnmarshalRejectsMissingParts(t *testing.T) {
	var m Temporal
	if err := json.Unmarshal([]byte(`{"family":"x"}`), &m); err == nil {
		t.Error("missing series models should error")
	}
	if err := json.Unmarshal([]byte(`{bad`), &m); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestSpatialUnmarshalRejectsMissingParts(t *testing.T) {
	var m Spatial
	if err := json.Unmarshal([]byte(`{"as":7}`), &m); err == nil {
		t.Error("missing series models should error")
	}
}
