// Package core implements the paper's contribution: the temporal (ARIMA,
// §IV), spatial (NAR neural network, §V), and spatiotemporal (model tree,
// §VI) predictors of DDoS attack behavior, together with the Always Same
// and Always Mean baselines of the §VII-A comparison.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/arima"
	"repro/internal/nn"
	"repro/internal/stats"
)

// SeriesPredictor is a one-step-ahead forecaster over a univariate series.
// Fit estimates on training history; PredictNext forecasts the next value;
// Update feeds the realized value for walk-forward evaluation.
type SeriesPredictor interface {
	Fit(train []float64) error
	PredictNext() (float64, error)
	Update(x float64)
	Name() string
}

// ErrNotFitted is returned by PredictNext before Fit.
var ErrNotFitted = errors.New("core: predictor not fitted")

// AlwaysSame predicts the previous observation (the first baseline of
// §VII-A).
type AlwaysSame struct {
	last   float64
	fitted bool
}

// Name implements SeriesPredictor.
func (p *AlwaysSame) Name() string { return "AlwaysSame" }

// Fit records the last training observation.
func (p *AlwaysSame) Fit(train []float64) error {
	if len(train) == 0 {
		return errors.New("core: AlwaysSame needs at least one observation")
	}
	p.last = train[len(train)-1]
	p.fitted = true
	return nil
}

// PredictNext returns the previous observation.
func (p *AlwaysSame) PredictNext() (float64, error) {
	if !p.fitted {
		return 0, ErrNotFitted
	}
	return p.last, nil
}

// Update records the realized value.
func (p *AlwaysSame) Update(x float64) { p.last = x }

// AlwaysMean predicts the running mean of all observations so far (the
// second baseline of §VII-A).
type AlwaysMean struct {
	sum    float64
	n      int
	fitted bool
}

// Name implements SeriesPredictor.
func (p *AlwaysMean) Name() string { return "AlwaysMean" }

// Fit accumulates the training observations.
func (p *AlwaysMean) Fit(train []float64) error {
	if len(train) == 0 {
		return errors.New("core: AlwaysMean needs at least one observation")
	}
	p.sum = stats.Sum(train)
	p.n = len(train)
	p.fitted = true
	return nil
}

// PredictNext returns the running mean.
func (p *AlwaysMean) PredictNext() (float64, error) {
	if !p.fitted {
		return 0, ErrNotFitted
	}
	return p.sum / float64(p.n), nil
}

// Update folds the realized value into the running mean.
func (p *AlwaysMean) Update(x float64) {
	p.sum += x
	p.n++
}

// ARIMAPredictor adapts the temporal model engine to SeriesPredictor with
// AIC order selection over a small grid.
type ARIMAPredictor struct {
	MaxP, MaxD, MaxQ int
	model            *arima.Model
}

// Name implements SeriesPredictor.
func (p *ARIMAPredictor) Name() string { return "Temporal(ARIMA)" }

// Fit selects and estimates the ARIMA order on the training series.
func (p *ARIMAPredictor) Fit(train []float64) error {
	maxP, maxD, maxQ := p.MaxP, p.MaxD, p.MaxQ
	if maxP < 1 {
		maxP = 3
	}
	if maxD < 0 {
		maxD = 1
	}
	if maxQ < 0 {
		maxQ = 1
	}
	m, err := arima.SelectOrder(train, maxP, maxD, maxQ)
	if err != nil {
		return fmt.Errorf("core: ARIMA fit: %w", err)
	}
	p.model = m
	return nil
}

// PredictNext forecasts one step ahead.
func (p *ARIMAPredictor) PredictNext() (float64, error) {
	if p.model == nil {
		return 0, ErrNotFitted
	}
	return p.model.PredictNext()
}

// Update feeds the realized value.
func (p *ARIMAPredictor) Update(x float64) {
	if p.model != nil {
		p.model.Update(x)
	}
}

// GoodnessOfFit exposes the fitted model's Ljung–Box residual-whiteness
// test (§III-C's goodness-of-fit validation axis). It returns NaNs before
// Fit.
func (p *ARIMAPredictor) GoodnessOfFit(maxLag int) (q, pValue float64) {
	if p.model == nil {
		return math.NaN(), math.NaN()
	}
	return p.model.GoodnessOfFit(maxLag)
}

// NARPredictor adapts the spatial model engine (grid-searched nonlinear
// autoregressive network) to SeriesPredictor.
type NARPredictor struct {
	Delays []int
	Hidden []int
	Seed   uint64
	Train  nn.TrainConfig
	model  *nn.NAR
}

// Name implements SeriesPredictor.
func (p *NARPredictor) Name() string { return "Spatial(NAR)" }

// Fit grid-searches delays and hidden nodes, then trains on the series.
func (p *NARPredictor) Fit(train []float64) error {
	m, err := nn.GridSearchNAR(train, p.Delays, p.Hidden, p.Seed, p.Train)
	if err != nil {
		return fmt.Errorf("core: NAR fit: %w", err)
	}
	p.model = m
	return nil
}

// PredictNext forecasts one step ahead.
func (p *NARPredictor) PredictNext() (float64, error) {
	if p.model == nil {
		return 0, ErrNotFitted
	}
	return p.model.PredictNext(), nil
}

// Update feeds the realized value.
func (p *NARPredictor) Update(x float64) {
	if p.model != nil {
		p.model.Update(x)
	}
}

// WalkForward fits the predictor on train and produces one-step-ahead
// predictions over test, updating with each realized value — the paper's
// test-set validation protocol. It returns the predictions and their RMSE.
func WalkForward(p SeriesPredictor, train, test []float64) (preds []float64, rmse float64, err error) {
	if err := p.Fit(train); err != nil {
		return nil, 0, err
	}
	preds = make([]float64, len(test))
	for i, x := range test {
		v, err := p.PredictNext()
		if err != nil {
			return nil, 0, err
		}
		preds[i] = v
		p.Update(x)
	}
	rmse, err = stats.RMSE(preds, test)
	if err != nil {
		return nil, 0, err
	}
	return preds, rmse, nil
}
