package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
)

func TestAlwaysSame(t *testing.T) {
	var p AlwaysSame
	if _, err := p.PredictNext(); err == nil {
		t.Error("unfitted PredictNext should error")
	}
	if err := p.Fit(nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := p.Fit([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.PredictNext(); v != 3 {
		t.Errorf("PredictNext = %v, want 3", v)
	}
	p.Update(7)
	if v, _ := p.PredictNext(); v != 7 {
		t.Errorf("after Update = %v, want 7", v)
	}
	if p.Name() != "AlwaysSame" {
		t.Error("name")
	}
}

func TestAlwaysMean(t *testing.T) {
	var p AlwaysMean
	if _, err := p.PredictNext(); err == nil {
		t.Error("unfitted PredictNext should error")
	}
	if err := p.Fit(nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := p.Fit([]float64{2, 4}); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.PredictNext(); v != 3 {
		t.Errorf("mean = %v, want 3", v)
	}
	p.Update(6)
	if v, _ := p.PredictNext(); v != 4 {
		t.Errorf("running mean = %v, want 4", v)
	}
	if p.Name() != "AlwaysMean" {
		t.Error("name")
	}
}

func genARSeries(n int, phi float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	return xs
}

func TestARIMAPredictorBeatsBaselinesOnAR(t *testing.T) {
	xs := genARSeries(1500, 0.8, 51)
	train, test := xs[:1200], xs[1200:]
	_, rmseModel, err := WalkForward(&ARIMAPredictor{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	_, rmseMean, err := WalkForward(&AlwaysMean{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if rmseModel >= rmseMean {
		t.Errorf("ARIMA %v should beat AlwaysMean %v", rmseModel, rmseMean)
	}
}

func TestARIMAPredictorErrors(t *testing.T) {
	p := &ARIMAPredictor{}
	if err := p.Fit([]float64{1}); err == nil {
		t.Error("tiny series should error")
	}
	if _, err := p.PredictNext(); err == nil {
		t.Error("unfitted predict should error")
	}
	p.Update(1) // must not panic unfitted
}

func TestNARPredictorFitsSine(t *testing.T) {
	n := 300
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	p := &NARPredictor{Seed: 3}
	_, rmse, err := WalkForward(p, xs[:250], xs[250:])
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.4 {
		t.Errorf("NAR sine walk-forward RMSE = %v", rmse)
	}
	if p.Name() != "Spatial(NAR)" {
		t.Error("name")
	}
	q := &NARPredictor{}
	if err := q.Fit([]float64{1, 2}); err == nil {
		t.Error("tiny series should error")
	}
	if _, err := q.PredictNext(); err == nil {
		t.Error("unfitted predict should error")
	}
	q.Update(1) // no panic
}

// mkTestAttacks builds a family series with a daily cadence, fixed hour
// pattern, and AR magnitudes.
func mkTestAttacks(n int, family string, seed uint64) []trace.Attack {
	rng := rand.New(rand.NewPCG(seed, seed+2))
	base := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	mag := 50.0
	out := make([]trace.Attack, n)
	for i := 0; i < n; i++ {
		mag = 50 + 0.8*(mag-50) + rng.NormFloat64()*3
		b := make([]astopo.IPv4, int(mag))
		for j := range b {
			b[j] = astopo.IPv4(10000 + j)
		}
		start := base.Add(time.Duration(i) * 6 * time.Hour).Add(time.Duration(rng.IntN(3600)) * time.Second)
		out[i] = trace.Attack{
			ID: i + 1, Family: family, Start: start,
			DurationSec: 600 + 100*rng.NormFloat64(),
			TargetIP:    1, TargetAS: 7,
			Bots: b,
		}
	}
	return out
}

func TestFitTemporalAndPredict(t *testing.T) {
	attacks := mkTestAttacks(200, "F", 9)
	m, err := FitTemporal("F", attacks, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mag := m.PredictMagnitude()
	if mag < 20 || mag > 90 {
		t.Errorf("magnitude prediction %v out of plausible range", mag)
	}
	h := m.PredictHour()
	if h < 0 || h >= 24 {
		t.Errorf("hour prediction %v out of range", h)
	}
	d := m.PredictDay()
	if d < 1 || d > 31 {
		t.Errorf("day prediction %v out of range", d)
	}
	iv := m.PredictInterval()
	if iv < 0 {
		t.Errorf("interval prediction %v negative", iv)
	}
	// Cadence is 6h; interval prediction should be in the ballpark.
	if math.Abs(iv-6*3600) > 3*3600 {
		t.Errorf("interval prediction %v, want ~21600", iv)
	}
	next := m.PredictNextStart()
	if !next.After(attacks[len(attacks)-1].Start) {
		t.Error("next start should be after the last attack")
	}
	// Observe keeps the model total and within range.
	m.Observe(&attacks[len(attacks)-1])
	if v := m.PredictHour(); v < 0 || v >= 24 {
		t.Errorf("post-observe hour %v", v)
	}
}

func TestFitTemporalTooShort(t *testing.T) {
	if _, err := FitTemporal("F", nil, TemporalConfig{}); err == nil {
		t.Error("no attacks should error")
	}
}

func TestFitTemporalShortFallsBackToMean(t *testing.T) {
	attacks := mkTestAttacks(5, "F", 11)
	m, err := FitTemporal("F", attacks, TemporalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// With 5 attacks ARIMA is skipped; predictions equal training means.
	var magSum float64
	for i := range attacks {
		magSum += float64(attacks[i].Magnitude())
	}
	want := magSum / float64(len(attacks))
	if got := m.PredictMagnitude(); math.Abs(got-want) > 1e-9 {
		t.Errorf("fallback magnitude = %v, want mean %v", got, want)
	}
}

func TestFitSpatialAndPredict(t *testing.T) {
	attacks := mkTestAttacks(120, "F", 13)
	m, err := FitSpatial(7, attacks, SpatialConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.AS != 7 {
		t.Error("AS not recorded")
	}
	if d := m.PredictDuration(); d < 0 || d > 5000 {
		t.Errorf("duration prediction %v implausible", d)
	}
	if h := m.PredictHour(); h < 0 || h >= 24 {
		t.Errorf("hour %v out of range", h)
	}
	if d := m.PredictDay(); d < 1 || d > 31 {
		t.Errorf("day %v out of range", d)
	}
	m.Observe(&attacks[0])
	if d := m.PredictDuration(); d < 0 {
		t.Errorf("post-observe duration %v", d)
	}
}

func TestFitSpatialTooShort(t *testing.T) {
	if _, err := FitSpatial(7, nil, SpatialConfig{}); err == nil {
		t.Error("no attacks should error")
	}
}

func stSamples(n int, seed uint64) []STSample {
	rng := rand.New(rand.NewPCG(seed, seed+3))
	out := make([]STSample, n)
	for i := range out {
		prevHour := 4 + 16*rng.Float64()
		tmpHour := prevHour + rng.NormFloat64()*2
		out[i] = STSample{
			F: STFeatures{
				TmpHour:  tmpHour,
				SpaHour:  12,
				PrevHour: prevHour,
				TargetAS: float64(100 + i%5),
			},
			Hour: prevHour + rng.NormFloat64()*0.5,
			Day:  float64(1 + i%28),
			Dur:  600,
			Mag:  50,
		}
	}
	return out
}

func TestFitSpatiotemporalLearnsPrevHour(t *testing.T) {
	samples := stSamples(400, 17)
	st, err := FitSpatiotemporal(samples[:300], STConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for _, s := range samples[300:] {
		d := st.PredictHour(&s.F) - s.Hour
		sse += d * d
	}
	rmse := math.Sqrt(sse / 100)
	if rmse > 1.2 {
		t.Errorf("spatiotemporal hour RMSE = %v, want < 1.2 (PrevHour signal)", rmse)
	}
}

func TestFitSpatiotemporalBounds(t *testing.T) {
	samples := stSamples(100, 19)
	st, err := FitSpatiotemporal(samples, STConfig{})
	if err != nil {
		t.Fatal(err)
	}
	probe := &STFeatures{TmpHour: 1e9, PrevHour: -1e9}
	if h := st.PredictHour(probe); h < 0 || h >= 24 {
		t.Errorf("hour %v out of range", h)
	}
	if d := st.PredictDay(probe); d < 1 || d > 31 {
		t.Errorf("day %v out of range", d)
	}
	if d := st.PredictDuration(probe); d < 0 {
		t.Errorf("duration %v negative", d)
	}
	if m := st.PredictMagnitude(probe); m < 0 {
		t.Errorf("magnitude %v negative", m)
	}
}

func TestFitSpatiotemporalTooFew(t *testing.T) {
	if _, err := FitSpatiotemporal(stSamples(3, 1), STConfig{}); err == nil {
		t.Error("3 samples should error")
	}
}

func TestWalkForwardErrorPropagation(t *testing.T) {
	if _, _, err := WalkForward(&ARIMAPredictor{}, []float64{1}, []float64{2}); err == nil {
		t.Error("fit failure should propagate")
	}
	// Empty test set: RMSE over zero points errors.
	if _, _, err := WalkForward(&AlwaysSame{}, []float64{1, 2}, nil); err == nil {
		t.Error("empty test should error")
	}
}
