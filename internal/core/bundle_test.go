package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func bundleDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	var attacks []trace.Attack
	attacks = append(attacks, mkTestAttacks(80, "A", 101)...)
	more := mkTestAttacks(60, "B", 103)
	for i := range more {
		more[i].ID += 1000
		more[i].TargetAS = 9
	}
	attacks = append(attacks, more...)
	ds, err := trace.New(attacks)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainBundleAndRoundTrip(t *testing.T) {
	ds := bundleDataset(t)
	b, err := TrainBundle(ds, BundleConfig{Spatial: SpatialConfig{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Temporal) != 2 {
		t.Fatalf("temporal models = %d, want 2", len(b.Temporal))
	}
	if len(b.Spatial) != 2 {
		t.Fatalf("spatial models = %d, want 2", len(b.Spatial))
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	for fam, m := range b.Temporal {
		bm := back.Temporal[fam]
		if bm == nil {
			t.Fatalf("family %s lost", fam)
		}
		if math.Abs(m.PredictMagnitude()-bm.PredictMagnitude()) > 1e-9 {
			t.Errorf("%s: magnitude prediction differs", fam)
		}
	}
	for as, m := range b.Spatial {
		bm := back.Spatial[as]
		if bm == nil {
			t.Fatalf("AS %d lost", as)
		}
		if math.Abs(m.PredictDuration()-bm.PredictDuration()) > 1e-9 {
			t.Errorf("AS %d: duration prediction differs", as)
		}
	}
}

func TestTrainBundleGates(t *testing.T) {
	ds := bundleDataset(t)
	// High gates skip everything -> error.
	if _, err := TrainBundle(ds, BundleConfig{MinFamilyAttacks: 10000}); err == nil {
		t.Error("no trainable family should error")
	}
	if _, err := TrainBundle(nil, BundleConfig{}); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := TrainBundle(&trace.Dataset{}, BundleConfig{}); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := writeFile(empty, "{}"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(empty); err == nil {
		t.Error("empty bundle should error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Error("malformed bundle should error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
