package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/astopo"
	"repro/internal/trace"
)

// Bundle is a deployable set of fitted models: one temporal model per
// botnet family and one spatial model per target network. Train once with
// TrainBundle, persist with Save, and reload with LoadBundle (the
// cloud-security-service workflow the paper motivates in §VI-B: providers
// train on their vantage and ship predictions or models to customers).
type Bundle struct {
	Temporal map[string]*Temporal   `json:"temporal"`
	Spatial  map[astopo.AS]*Spatial `json:"spatial"`
}

// BundleConfig gates and configures bundle training.
type BundleConfig struct {
	// MinFamilyAttacks / MinASAttacks skip families and networks with too
	// little history (defaults 12).
	MinFamilyAttacks int
	MinASAttacks     int
	// MaxSeriesLen caps the per-network series fed to the NAR grid search
	// (default 400).
	MaxSeriesLen int
	Temporal     TemporalConfig
	Spatial      SpatialConfig
}

func (c BundleConfig) withDefaults() BundleConfig {
	if c.MinFamilyAttacks < 3 {
		c.MinFamilyAttacks = 12
	}
	if c.MinASAttacks < 3 {
		c.MinASAttacks = 12
	}
	if c.MaxSeriesLen < 1 {
		c.MaxSeriesLen = 400
	}
	return c
}

// TrainBundle fits temporal models for every family and spatial models for
// every target network with sufficient history.
func TrainBundle(ds *trace.Dataset, cfg BundleConfig) (*Bundle, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	cfg = cfg.withDefaults()
	b := &Bundle{
		Temporal: make(map[string]*Temporal),
		Spatial:  make(map[astopo.AS]*Spatial),
	}
	for _, fam := range ds.Families() {
		attacks := ds.ByFamily(fam)
		if len(attacks) < cfg.MinFamilyAttacks {
			continue
		}
		m, err := FitTemporal(fam, attacks, cfg.Temporal)
		if err != nil {
			return nil, fmt.Errorf("core: bundle family %s: %w", fam, err)
		}
		b.Temporal[fam] = m
	}
	byAS := ds.ByTargetAS()
	ases := make([]astopo.AS, 0, len(byAS))
	for as := range byAS {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	for _, as := range ases {
		attacks := byAS[as]
		if len(attacks) < cfg.MinASAttacks {
			continue
		}
		if len(attacks) > cfg.MaxSeriesLen {
			attacks = attacks[len(attacks)-cfg.MaxSeriesLen:]
		}
		m, err := FitSpatial(as, attacks, cfg.Spatial)
		if err != nil {
			return nil, fmt.Errorf("core: bundle AS%d: %w", as, err)
		}
		b.Spatial[as] = m
	}
	if len(b.Temporal) == 0 {
		return nil, errors.New("core: no family had enough attacks to train")
	}
	return b, nil
}

// Save writes the bundle as JSON.
func (b *Bundle) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(b); err != nil {
		return fmt.Errorf("core: save bundle: %w", err)
	}
	return f.Sync()
}

// LoadBundle reads a bundle written by Save.
func LoadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	defer f.Close()
	var b Bundle
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	if len(b.Temporal) == 0 && len(b.Spatial) == 0 {
		return nil, errors.New("core: load bundle: empty bundle")
	}
	return &b, nil
}
