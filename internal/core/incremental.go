package core

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrNoTail is returned by the incremental constructors when there is
// nothing to fold in or no previous generation to fold into.
var ErrNoTail = errors.New("core: incremental refit needs a previous model and a non-empty tail")

// foldIn returns a copy of the series model advanced over the new values:
// the running mean absorbs them and the ARIMA state folds them in without
// re-estimation. A drift diagnostic failure aborts the incremental path.
func (sm *seriesModel) foldIn(xs []float64, driftRatio float64) (*seriesModel, error) {
	if sm == nil {
		return nil, nil
	}
	c := &seriesModel{m: sm.m.Clone(), mean: sm.mean, n: sm.n}
	for _, x := range xs {
		c.mean = (c.mean*float64(c.n) + x) / float64(c.n+1)
		c.n++
	}
	if c.m != nil {
		if err := c.m.FoldIn(xs, driftRatio); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// foldIn returns a copy of the NAR series model advanced over the new
// values via a warm-started re-train on only the new lag rows.
func (nm *narModel) foldIn(xs []float64, epochs int, driftRatio float64) (*narModel, error) {
	if nm == nil {
		return nil, nil
	}
	c := &narModel{mean: nm.mean, n: nm.n}
	for _, x := range xs {
		c.mean = (c.mean*float64(c.n) + x) / float64(c.n+1)
		c.n++
	}
	if nm.m != nil {
		warm, err := nm.m.WarmRefit(xs, epochs, driftRatio)
		if err != nil {
			return nil, err
		}
		c.m = warm
	}
	return c, nil
}

// IncrementalTemporal folds the newly observed attacks into a copy of the
// previous generation's temporal model: running means absorb the tail and
// each ARIMA series folds it in as walk-forward updates under frozen
// coefficients — O(len(tail)) instead of a full O(window) order search.
// When any series' residual diagnostic degrades past driftRatio the error
// propagates and the caller must fall back to a full refit. The previous
// model is never mutated.
func IncrementalTemporal(prev *Temporal, tail []trace.Attack, driftRatio float64) (*Temporal, error) {
	if prev == nil || len(tail) == 0 {
		return nil, ErrNoTail
	}
	mags := make([]float64, len(tail))
	hours := make([]float64, len(tail))
	days := make([]float64, len(tail))
	for i := range tail {
		mags[i] = float64(tail[i].Magnitude())
		hours[i] = float64(tail[i].Hour())
		days[i] = float64(tail[i].Day())
	}
	intervals := make([]float64, 0, len(tail))
	last := prev.lastStart
	for i := range tail {
		if !last.IsZero() {
			if gap := tail[i].Start.Sub(last).Seconds(); gap >= 0 {
				intervals = append(intervals, gap)
			}
		}
		last = tail[i].Start
	}

	t := &Temporal{Family: prev.Family, lastStart: last}
	var err error
	if t.magnitude, err = prev.magnitude.foldIn(mags, driftRatio); err != nil {
		return nil, fmt.Errorf("core: magnitude series: %w", err)
	}
	if t.hour, err = prev.hour.foldIn(hours, driftRatio); err != nil {
		return nil, fmt.Errorf("core: hour series: %w", err)
	}
	if t.day, err = prev.day.foldIn(days, driftRatio); err != nil {
		return nil, fmt.Errorf("core: day series: %w", err)
	}
	if t.interval, err = prev.interval.foldIn(intervals, driftRatio); err != nil {
		return nil, fmt.Errorf("core: interval series: %w", err)
	}
	return t, nil
}

// IncrementalSpatial folds the newly observed attacks into a copy of the
// previous generation's spatial model: the grid-searched NAR topologies
// and scalers are kept and each network is warm re-trained on only the new
// lag rows — O(len(tail)·epochs) instead of a full delays×hidden grid
// search over the window. A drift diagnostic failure on any series
// propagates, signalling the caller to fall back to a full refit. The
// previous model is never mutated.
func IncrementalSpatial(prev *Spatial, tail []trace.Attack, epochs int, driftRatio float64) (*Spatial, error) {
	if prev == nil || len(tail) == 0 {
		return nil, ErrNoTail
	}
	durs := make([]float64, len(tail))
	hours := make([]float64, len(tail))
	days := make([]float64, len(tail))
	for i := range tail {
		durs[i] = tail[i].DurationSec
		hours[i] = float64(tail[i].Hour())
		days[i] = float64(tail[i].Day())
	}
	s := &Spatial{AS: prev.AS}
	var err error
	if s.duration, err = prev.duration.foldIn(durs, epochs, driftRatio); err != nil {
		return nil, fmt.Errorf("core: duration series: %w", err)
	}
	if s.hour, err = prev.hour.foldIn(hours, epochs, driftRatio); err != nil {
		return nil, fmt.Errorf("core: hour series: %w", err)
	}
	if s.day, err = prev.day.foldIn(days, epochs, driftRatio); err != nil {
		return nil, fmt.Errorf("core: day series: %w", err)
	}
	return s, nil
}
