package core

import (
	"errors"

	"repro/internal/astopo"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Spatial is the paper's spatial model (§V): per target network (AS), a
// nonlinear autoregressive neural network over the chronologically ordered
// attacks observed in that network — their durations, launch hours, and
// days. Series too short for the NAR fall back to the training mean.
type Spatial struct {
	AS astopo.AS

	duration *narModel
	hour     *narModel
	day      *narModel
}

// SpatialConfig controls the NAR grid search (§V-A tunes the number of
// delays and hidden nodes per dataset).
type SpatialConfig struct {
	Delays []int
	Hidden []int
	Seed   uint64
	Train  nn.TrainConfig
}

func (c SpatialConfig) withDefaults() SpatialConfig {
	if len(c.Delays) == 0 {
		c.Delays = []int{2, 4}
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{4, 8}
	}
	if c.Train.Epochs == 0 {
		c.Train.Epochs = 250
	}
	return c
}

// narModel is a NAR with a mean fallback for short series.
type narModel struct {
	m    *nn.NAR
	mean float64
	n    int
}

func fitNARSeries(xs []float64, cfg SpatialConfig, seedOffset uint64) *narModel {
	nm := &narModel{mean: stats.Mean(xs), n: len(xs)}
	if len(xs) >= 12 {
		if m, err := nn.GridSearchNAR(xs, cfg.Delays, cfg.Hidden, cfg.Seed+seedOffset, cfg.Train); err == nil {
			nm.m = m
		}
	}
	return nm
}

func (nm *narModel) predict() float64 {
	if nm == nil || nm.n == 0 {
		return 0
	}
	if nm.m != nil {
		return nm.m.PredictNext()
	}
	return nm.mean
}

func (nm *narModel) update(x float64) {
	if nm == nil {
		return
	}
	nm.mean = (nm.mean*float64(nm.n) + x) / float64(nm.n+1)
	nm.n++
	if nm.m != nil {
		nm.m.Update(x)
	}
}

// FitSpatial estimates the spatial model on the chronological attacks
// targeting one AS.
func FitSpatial(as astopo.AS, attacks []trace.Attack, cfg SpatialConfig) (*Spatial, error) {
	if len(attacks) < 3 {
		return nil, errors.New("core: spatial model needs at least 3 attacks")
	}
	cfg = cfg.withDefaults()
	durs := make([]float64, len(attacks))
	hours := make([]float64, len(attacks))
	days := make([]float64, len(attacks))
	for i := range attacks {
		durs[i] = attacks[i].DurationSec
		hours[i] = float64(attacks[i].Hour())
		days[i] = float64(attacks[i].Day())
	}
	return &Spatial{
		AS:       as,
		duration: fitNARSeries(durs, cfg, 1),
		hour:     fitNARSeries(hours, cfg, 2),
		day:      fitNARSeries(days, cfg, 3),
	}, nil
}

// PredictDuration forecasts the next attack's duration in seconds (Eq. 6),
// floored at zero.
func (s *Spatial) PredictDuration() float64 {
	v := s.duration.predict()
	if v < 0 {
		return 0
	}
	return v
}

// PredictHour forecasts the next attack's launch hour in this network,
// clamped to [0, 24).
func (s *Spatial) PredictHour() float64 { return clamp(s.hour.predict(), 0, 23.999) }

// PredictDay forecasts the next attack's day of month, clamped to [1, 31].
func (s *Spatial) PredictDay() float64 { return clamp(s.day.predict(), 1, 31) }

// Observe feeds a newly observed attack on this network (walk-forward).
func (s *Spatial) Observe(a *trace.Attack) {
	s.duration.update(a.DurationSec)
	s.hour.update(float64(a.Hour()))
	s.day.update(float64(a.Day()))
}
