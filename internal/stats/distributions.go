package stats

import (
	"math"
	"math/rand/v2"
)

// Sampler draws random variates from the distributions needed by the
// synthetic trace substrate. It wraps a seeded PCG generator so that every
// experiment in the repository is reproducible.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a Sampler seeded deterministically from seed.
func NewSampler(seed uint64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Sampler) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform integer in [0, n).
func (s *Sampler) IntN(n int) int { return s.rng.IntN(n) }

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Sampler) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// LogNormal returns a log-normal variate where the underlying normal has
// mean mu and standard deviation sigma.
func (s *Sampler) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given rate (1/mean).
func (s *Sampler) Exponential(rate float64) float64 {
	return s.rng.ExpFloat64() / rate
}

// Gamma returns a gamma variate with the given shape and scale, using the
// Marsaglia–Tsang squeeze method (with the standard shape<1 boost).
func (s *Sampler) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's multiplication method; for large means it uses a normal
// approximation with continuity correction (adequate for workload
// generation).
func (s *Sampler) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := s.Normal(lambda, math.Sqrt(lambda))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// NegBinomialMeanCV returns a count variate with the requested mean and
// coefficient of variation, realized as a gamma–Poisson mixture. When the
// requested variance does not exceed the mean (under-dispersion, which the
// mixture cannot express), it falls back to a plain Poisson draw.
func (s *Sampler) NegBinomialMeanCV(mean, cv float64) int {
	if mean <= 0 {
		return 0
	}
	variance := cv * mean * cv * mean
	if variance <= mean {
		return s.Poisson(mean)
	}
	// Gamma–Poisson: lambda ~ Gamma(shape, scale) with
	// shape*scale = mean and shape*scale^2 = variance - mean.
	scale := (variance - mean) / mean
	shape := mean / scale
	return s.Poisson(s.Gamma(shape, scale))
}

// NormalCDF returns the standard-normal cumulative distribution function
// evaluated after standardizing x by mu and sigma.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative mass for O(log n) sampling.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent s > 0.
// It returns nil when n < 1.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		return nil
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws a rank in [0, n) using the provided sampler.
func (z *Zipf) Sample(s *Sampler) int {
	u := s.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
