package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSumAndMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		sum  float64
		mean float64
	}{
		{name: "simple", in: []float64{1, 2, 3, 4}, sum: 10, mean: 2.5},
		{name: "single", in: []float64{7}, sum: 7, mean: 7},
		{name: "negatives", in: []float64{-1, 1}, sum: 0, mean: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); got != tt.sum {
				t.Errorf("Sum = %v, want %v", got, tt.sum)
			}
			if got := Mean(tt.in); got != tt.mean {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CV(xs); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	if !math.IsNaN(CV([]float64{1, -1})) {
		t.Error("CV with zero mean should be NaN")
	}
	xs = []float64{1, 2, 3}
	want := StdDev(xs) / 2
	if got := CV(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("CV = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Median(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := Quantile(xs, -5); got != 1 {
		t.Errorf("Quantile clamps below: %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	rmse, err := RMSE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(4.0 / 3.0); !almostEqual(rmse, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	mae, err := MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, 2.0/3.0, 1e-12) {
		t.Errorf("MAE = %v, want %v", mae, 2.0/3.0)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("RMSE length mismatch should error")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("MAE of empty should error")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v, want -1", r)
	}
	r, _ = Correlation(xs, []float64{5, 5, 5, 5})
	if !math.IsNaN(r) {
		t.Errorf("zero-variance correlation = %v, want NaN", r)
	}
	if _, err := Correlation(xs, ys[:2]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAutocorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 autocorrelation = %v, want 1", got)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(alt, 1); got >= 0 {
		t.Errorf("alternating lag-1 autocorrelation = %v, want negative", got)
	}
	if !math.IsNaN(Autocorrelation(xs, 100)) {
		t.Error("out-of-range lag should be NaN")
	}
}

func TestZScores(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := ZScores(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("z-score mean = %v, want 0", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("z-score std = %v, want 1", StdDev(z))
	}
	flat := ZScores([]float64{3, 3, 3})
	for _, v := range flat {
		if v != 0 {
			t.Errorf("constant series z-scores = %v, want zeros", flat)
			break
		}
	}
}

// Property: quantile is monotone nondecreasing in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant.
func TestVarianceTranslationProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.Abs(v) < 1e6 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e6)
		if math.IsNaN(shift) {
			shift = 0
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		v1, v2 := Variance(xs), Variance(shifted)
		return almostEqual(v1, v2, 1e-6*(1+math.Abs(v1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
