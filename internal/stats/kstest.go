package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of xs and ys.
// It is used to quantify how close a predicted distribution (e.g. the
// Figure 3 hour histograms) sits to the ground truth.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance past every sample equal to the smaller current value in
		// both arrays before comparing the CDFs, so ties and duplicates do
		// not create spurious steps.
		v := a[i]
		if b[j] < v {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue approximates the asymptotic p-value of the two-sample KS
// statistic d with sample sizes n and m, using the Kolmogorov
// distribution's series expansion.
func KSPValue(d float64, n, m int) float64 {
	if n <= 0 || m <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	if lambda <= 0 {
		return 1
	}
	var sum float64
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*lambda*lambda*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		sum = 0
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ShannonEntropy returns the Shannon entropy (in bits) of a discrete
// distribution given as nonnegative weights (they are normalized
// internally; zero weights contribute nothing). The paper (§V-B) suggests
// monitoring the entropy of AS distributions over concurrent connections
// for early DDoS detection.
func ShannonEntropy(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log2(p)
	}
	return h
}
