package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the sample xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of sample points backing the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Eval returns P(X <= x) under the empirical distribution.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Number of sample points <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with Eval(v) >= q.
// q is clamped into (0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return e.sorted[idx]
}

// Histogram bins the sample xs into nbins equal-width bins spanning
// [min, max]. It returns the bin left edges and counts. Values exactly at
// max land in the last bin. Empty input or nbins < 1 yields nil slices.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if len(xs) == 0 || nbins < 1 {
		return nil, nil
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nbins)
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// HistogramInts counts occurrences of integer-valued observations in
// [lo, hi], one bin per integer. Out-of-range values are clamped into the
// boundary bins. It is used to render the paper's hour-of-day and
// day-of-month distribution figures.
func HistogramInts(xs []float64, lo, hi int) []int {
	if hi < lo {
		return nil
	}
	counts := make([]int, hi-lo+1)
	for _, x := range xs {
		v := int(math.Round(x))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		counts[v-lo]++
	}
	return counts
}
