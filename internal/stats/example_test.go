package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Compute the Table I activity statistics of a daily attack-count series.
func ExampleCV() {
	daily := []float64{2, 1, 3, 2, 2, 4, 1, 2}
	fmt.Printf("mean %.3f\n", stats.Mean(daily))
	fmt.Printf("cv   %.3f\n", stats.CV(daily))
	// Output:
	// mean 2.125
	// cv   0.466
}

// Summarize an inter-launching-time sample with its empirical CDF.
func ExampleECDF() {
	gaps := []float64{40, 90, 300, 3600, 86000, 90000}
	e := stats.NewECDF(gaps)
	fmt.Printf("P(gap <= 1h)  = %.2f\n", e.Eval(3600))
	fmt.Printf("median gap    = %.0f\n", e.Quantile(0.5))
	// Output:
	// P(gap <= 1h)  = 0.67
	// median gap    = 300
}
