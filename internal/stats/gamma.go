package stats

import "math"

// Regularized incomplete gamma functions, used for the chi-square CDF
// behind the Ljung–Box goodness-of-fit test (§III-C validates models by
// goodness of fit as well as by prediction).

// GammaP returns the regularized lower incomplete gamma function P(a, x),
// NaN for invalid arguments.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) float64 {
	if k < 1 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return GammaP(float64(k)/2, x/2)
}

// gammaSeries evaluates P(a, x) by its power series (x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by Lentz's
// continued fraction (x >= a+1).
func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// LjungBox computes the Ljung–Box Q statistic of a residual series over
// the first maxLag autocorrelations and the p-value of the null hypothesis
// that the residuals are white noise, with fittedParams degrees of freedom
// consumed by the model (Q ~ chi-square with maxLag - fittedParams df).
// A small p-value rejects whiteness, i.e. the model left structure in the
// residuals.
func LjungBox(residuals []float64, maxLag, fittedParams int) (q, pValue float64) {
	n := len(residuals)
	if n < 3 || maxLag < 1 {
		return math.NaN(), math.NaN()
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	for k := 1; k <= maxLag; k++ {
		r := Autocorrelation(residuals, k)
		if math.IsNaN(r) {
			return math.NaN(), math.NaN()
		}
		q += r * r / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	df := maxLag - fittedParams
	if df < 1 {
		df = 1
	}
	return q, 1 - ChiSquareCDF(q, df)
}
