package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{x: 0, want: 0},
		{x: 1, want: 0.25},
		{x: 1.5, want: 0.25},
		{x: 2, want: 0.75},
		{x: 3, want: 1},
		{x: 10, want: 1},
	}
	for _, tt := range tests {
		if got := e.Eval(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0.25); got != 10 {
		t.Errorf("Quantile(0.25) = %v, want 10", got)
	}
	if got := e.Quantile(0.26); got != 20 {
		t.Errorf("Quantile(0.26) = %v, want 20", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %v, want 40", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	empty := NewECDF(nil)
	if !math.IsNaN(empty.Eval(1)) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty ECDF should return NaN")
	}
}

// Property: ECDF is monotone and bounded in [0, 1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		if a > b {
			a, b = b, a
		}
		pa, pb := e.Eval(a), e.Eval(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	edges, counts := Histogram(xs, 5)
	if len(edges) != 5 || len(counts) != 5 {
		t.Fatalf("got %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
	for _, c := range counts {
		if c != 2 {
			t.Errorf("uniform data counts = %v, want all 2", counts)
			break
		}
	}
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Error("empty histogram should be nil")
	}
	// Degenerate constant data should not panic and puts all in one bin.
	_, counts = Histogram([]float64{5, 5, 5}, 3)
	if Sum([]float64{float64(counts[0]), float64(counts[1]), float64(counts[2])}) != 3 {
		t.Errorf("constant-data histogram = %v", counts)
	}
}

func TestHistogramInts(t *testing.T) {
	xs := []float64{0, 1.2, 23, 23.4, -5, 30}
	counts := HistogramInts(xs, 0, 23)
	if len(counts) != 24 {
		t.Fatalf("len = %d, want 24", len(counts))
	}
	if counts[0] != 2 { // 0 and clamped -5
		t.Errorf("counts[0] = %d, want 2", counts[0])
	}
	if counts[1] != 1 {
		t.Errorf("counts[1] = %d, want 1", counts[1])
	}
	if counts[23] != 3 { // 23, 23.4 rounds to 23, clamped 30
		t.Errorf("counts[23] = %d, want 3", counts[23])
	}
	if HistogramInts(xs, 5, 4) != nil {
		t.Error("inverted range should be nil")
	}
}
