package stats

import (
	"math"
	"testing"
)

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d > 1e-12 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KSStatistic(xs, ys); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSStatisticShifted(t *testing.T) {
	s := NewSampler(71)
	n := 3000
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = s.Normal(0, 1)
		ys[i] = s.Normal(0, 1)
		zs[i] = s.Normal(2, 1)
	}
	same := KSStatistic(xs, ys)
	diff := KSStatistic(xs, zs)
	if same > 0.06 {
		t.Errorf("KS of same distribution = %v, want small", same)
	}
	// Theoretical KS between N(0,1) and N(2,1) is 2*Phi(1)-1 ~ 0.6827.
	if math.Abs(diff-0.683) > 0.05 {
		t.Errorf("KS of shifted = %v, want ~0.68", diff)
	}
	if !math.IsNaN(KSStatistic(nil, xs)) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSPValue(t *testing.T) {
	// Large D on decent samples: tiny p.
	if p := KSPValue(0.7, 100, 100); p > 1e-6 {
		t.Errorf("p(0.7) = %v, want ~0", p)
	}
	// Tiny D: p near 1.
	if p := KSPValue(0.01, 100, 100); p < 0.99 {
		t.Errorf("p(0.01) = %v, want ~1", p)
	}
	if !math.IsNaN(KSPValue(0.5, 0, 10)) {
		t.Error("invalid sizes should be NaN")
	}
	// p decreases in D.
	prev := 1.0
	for _, d := range []float64{0.05, 0.1, 0.2, 0.4} {
		p := KSPValue(d, 200, 200)
		if p > prev+1e-12 {
			t.Errorf("p not monotone at d=%v", d)
		}
		prev = p
	}
}

func TestShannonEntropy(t *testing.T) {
	// Uniform over 4: 2 bits.
	if h := ShannonEntropy([]float64{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform entropy = %v, want 2", h)
	}
	// Degenerate: 0 bits.
	if h := ShannonEntropy([]float64{5, 0, 0}); h != 0 {
		t.Errorf("point-mass entropy = %v, want 0", h)
	}
	if h := ShannonEntropy(nil); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
	// Skewed < uniform.
	if ShannonEntropy([]float64{10, 1, 1, 1}) >= 2 {
		t.Error("skewed distribution should have lower entropy than uniform")
	}
	// Negative weights are ignored, not crashed on.
	if h := ShannonEntropy([]float64{-3, 2, 2}); math.Abs(h-1) > 1e-12 {
		t.Errorf("entropy with negatives = %v, want 1", h)
	}
}
