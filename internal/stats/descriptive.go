// Package stats provides the descriptive statistics, probability
// distributions, and sampling primitives used throughout the DDoS behavior
// models. Everything is implemented on plain float64 slices with no external
// dependencies so that the modeling packages (arima, nn, cart) can stay
// self-contained.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. Mean of an empty slice is NaN.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance of xs (denominator n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (relative standard deviation),
// the ratio of the sample standard deviation to the mean. The paper uses CV
// to measure the stability of per-family daily attack counts (Table I).
// CV is NaN when the mean is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs and an error on empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs and an error on empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the sample median of xs, NaN on empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile of xs (0 <= q <= 1) using
// linear interpolation between order statistics. It returns NaN on empty
// input and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns the root mean squared error between predictions and truth.
// The two slices must have equal nonzero length.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range pred {
		d := pred[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, errors.New("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns NaN when either input has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, using the
// standard biased estimator (normalized by the lag-0 autocovariance).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// ZScores returns xs standardized to zero mean and unit standard deviation.
// If the standard deviation is zero, the centered values are returned as-is.
func ZScores(xs []float64) []float64 {
	m, s := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		if s == 0 {
			out[i] = x - m
		} else {
			out[i] = (x - m) / s
		}
	}
	return out
}
