package stats

import (
	"math"
	"testing"
)

func TestGammaPKnownValues(t *testing.T) {
	tests := []struct {
		a, x, want float64
	}{
		// P(1, x) = 1 - e^-x (exponential CDF).
		{a: 1, x: 1, want: 1 - math.Exp(-1)},
		{a: 1, x: 5, want: 1 - math.Exp(-5)},
		// P(0.5, x) = erf(sqrt(x)).
		{a: 0.5, x: 0.25, want: math.Erf(0.5)},
		{a: 0.5, x: 4, want: math.Erf(2)},
		// Large-x saturation.
		{a: 3, x: 100, want: 1},
	}
	for _, tt := range tests {
		if got := GammaP(tt.a, tt.x); math.Abs(got-tt.want) > 1e-10 {
			t.Errorf("GammaP(%v,%v) = %v, want %v", tt.a, tt.x, got, tt.want)
		}
	}
	if GammaP(1, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid args should be NaN")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Chi-square with 2 df is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v,2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi-square(1) is ~0.455.
	if got := ChiSquareCDF(0.455, 1); math.Abs(got-0.5) > 0.01 {
		t.Errorf("CDF(0.455,1) = %v, want ~0.5", got)
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x should be 0")
	}
	if !math.IsNaN(ChiSquareCDF(1, 0)) {
		t.Error("k=0 should be NaN")
	}
	// Monotone in x.
	prev := 0.0
	for x := 0.5; x < 30; x += 0.5 {
		c := ChiSquareCDF(x, 5)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
}

func TestLjungBoxWhiteNoise(t *testing.T) {
	s := NewSampler(211)
	n := 2000
	white := make([]float64, n)
	for i := range white {
		white[i] = s.Normal(0, 1)
	}
	_, p := LjungBox(white, 10, 0)
	if p < 0.01 {
		t.Errorf("white noise rejected: p = %v", p)
	}
	// Strongly autocorrelated residuals must be rejected decisively.
	ar := make([]float64, n)
	for i := 1; i < n; i++ {
		ar[i] = 0.7*ar[i-1] + s.Normal(0, 1)
	}
	q, p := LjungBox(ar, 10, 0)
	if p > 1e-6 {
		t.Errorf("AR(1) residuals not rejected: q=%v p=%v", q, p)
	}
	// Degenerate inputs.
	if q, p := LjungBox([]float64{1, 2}, 5, 0); !math.IsNaN(q) || !math.IsNaN(p) {
		t.Error("tiny series should be NaN")
	}
}

func TestLjungBoxOnARIMAStyleResiduals(t *testing.T) {
	// Residuals from a well-specified model are white; from an
	// underspecified one they are not. Emulate with pre-whitened vs raw
	// AR data.
	s := NewSampler(213)
	n := 3000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.8*x[i-1] + s.Normal(0, 1)
	}
	// "Fitted" residuals: e_t = x_t - 0.8 x_{t-1} (true innovations).
	resid := make([]float64, n-1)
	for i := 1; i < n; i++ {
		resid[i-1] = x[i] - 0.8*x[i-1]
	}
	if _, p := LjungBox(resid, 12, 1); p < 0.01 {
		t.Errorf("true-model residuals rejected: p=%v", p)
	}
	if _, p := LjungBox(x, 12, 0); p > 1e-9 {
		t.Errorf("raw AR series accepted as white: p=%v", p)
	}
}
