package stats

import (
	"math"
	"testing"
)

func TestSamplerDeterminism(t *testing.T) {
	a, b := NewSampler(42), NewSampler(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewSampler(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewSampler(42).Normal(0, 1) != c.Normal(0, 1) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSampler(7)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Normal(5, 2)
	}
	if m := Mean(xs); math.Abs(m-5) > 0.1 {
		t.Errorf("normal mean = %v, want ~5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.1 {
		t.Errorf("normal std = %v, want ~2", sd)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewSampler(9)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("lognormal produced nonpositive %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSampler(11)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Exponential(0.5) // mean 2
	}
	if m := Mean(xs); math.Abs(m-2) > 0.1 {
		t.Errorf("exponential mean = %v, want ~2", m)
	}
}

func TestGammaMoments(t *testing.T) {
	s := NewSampler(13)
	shape, scale := 3.0, 2.0
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Gamma(shape, scale)
	}
	if m := Mean(xs); math.Abs(m-shape*scale) > 0.2 {
		t.Errorf("gamma mean = %v, want ~%v", m, shape*scale)
	}
	if v := Variance(xs); math.Abs(v-shape*scale*scale) > 1.0 {
		t.Errorf("gamma variance = %v, want ~%v", v, shape*scale*scale)
	}
	// Shape < 1 boost path.
	for i := range xs {
		xs[i] = s.Gamma(0.5, 1)
	}
	if m := Mean(xs); math.Abs(m-0.5) > 0.05 {
		t.Errorf("gamma(0.5,1) mean = %v, want ~0.5", m)
	}
	if s.Gamma(-1, 1) != 0 || s.Gamma(1, -1) != 0 {
		t.Error("invalid gamma params should return 0")
	}
}

func TestPoissonMoments(t *testing.T) {
	s := NewSampler(17)
	for _, lambda := range []float64{0.5, 4, 50} {
		n := 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(s.Poisson(lambda))
		}
		if m := Mean(xs); math.Abs(m-lambda)/lambda > 0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, m)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("nonpositive lambda should return 0")
	}
}

func TestNegBinomialMeanCV(t *testing.T) {
	s := NewSampler(19)
	mean, cv := 10.0, 1.2
	n := 30000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(s.NegBinomialMeanCV(mean, cv))
	}
	if m := Mean(xs); math.Abs(m-mean)/mean > 0.08 {
		t.Errorf("negbin mean = %v, want ~%v", m, mean)
	}
	if gotCV := CV(xs); math.Abs(gotCV-cv) > 0.15 {
		t.Errorf("negbin CV = %v, want ~%v", gotCV, cv)
	}
	// Under-dispersed request degrades to Poisson.
	for i := range xs {
		xs[i] = float64(s.NegBinomialMeanCV(10, 0.1))
	}
	if m := Mean(xs); math.Abs(m-10) > 0.5 {
		t.Errorf("underdispersed fallback mean = %v", m)
	}
	if s.NegBinomialMeanCV(0, 1) != 0 {
		t.Error("zero mean should return 0")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("CDF(1.96) = %v, want ~0.975", got)
	}
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 {
		t.Error("degenerate sigma should step at mu")
	}
}

func TestZipf(t *testing.T) {
	z := NewZipf(10, 1.0)
	if z == nil {
		t.Fatal("NewZipf returned nil")
	}
	var total float64
	for i := 0; i < 10; i++ {
		p := z.Prob(i)
		if p <= 0 {
			t.Errorf("Prob(%d) = %v, want positive", i, p)
		}
		total += p
	}
	if !almostEqual(total, 1, 1e-9) {
		t.Errorf("probabilities sum to %v, want 1", total)
	}
	if z.Prob(0) <= z.Prob(9) {
		t.Error("Zipf should put more mass on low ranks")
	}
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	// Sampling distribution roughly matches probabilities.
	s := NewSampler(23)
	counts := make([]int, 10)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	for i := 0; i < 10; i++ {
		emp := float64(counts[i]) / float64(n)
		if math.Abs(emp-z.Prob(i)) > 0.02 {
			t.Errorf("rank %d empirical %v vs %v", i, emp, z.Prob(i))
		}
	}
	if NewZipf(0, 1) != nil {
		t.Error("NewZipf(0) should be nil")
	}
}
