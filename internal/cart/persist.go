package cart

import (
	"encoding/json"
	"errors"
	"fmt"
)

// treeJSON is the serialized form of a fitted tree.
type treeJSON struct {
	Root   *Node   `json:"root"`
	MinY   float64 `json:"min_y"`
	MaxY   float64 `json:"max_y"`
	Bounds bool    `json:"bounds"`
}

// MarshalJSON serializes the fitted tree, including leaf MLR models and
// the prediction clamp bounds. The induction configuration is not needed
// for prediction and is not retained.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Root: t.Root, MinY: t.minY, MaxY: t.maxY, Bounds: t.bounds})
}

// UnmarshalJSON restores a tree serialized by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j treeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("cart: unmarshal: %w", err)
	}
	if j.Root == nil {
		return errors.New("cart: unmarshal: missing root")
	}
	if err := validateNode(j.Root); err != nil {
		return fmt.Errorf("cart: unmarshal: %w", err)
	}
	t.Root = j.Root
	t.minY, t.maxY, t.bounds = j.MinY, j.MaxY, j.Bounds
	return nil
}

// validateNode rejects malformed trees (an internal node must have both
// children).
func validateNode(n *Node) error {
	if n == nil {
		return nil
	}
	if (n.Left == nil) != (n.Right == nil) {
		return errors.New("internal node with a single child")
	}
	if err := validateNode(n.Left); err != nil {
		return err
	}
	return validateNode(n.Right)
}
