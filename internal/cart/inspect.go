package cart

import (
	"fmt"
	"strings"
)

// VariableImportance returns, per feature index, the total training-SSE
// reduction attributed to splits on that feature, normalized to sum to 1.
// It explains which model outputs the spatiotemporal tree actually relies
// on (the paper discusses this qualitatively for N_tmp/N_spa/N_int).
// Features never split on get importance 0; a single-leaf tree returns all
// zeros.
func (t *Tree) VariableImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	t.accumImportance(t.Root, imp)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// accumImportance walks the tree crediting each internal node's SSE gain
// to its split feature. Gains are recomputed from the stored child
// statistics: gain = n*var(node) - (nl*var(left) + nr*var(right)) is not
// retained at fit time, so the proxy used here is the subtree sample count
// (deeper, larger splits matter more). This keeps the signal ordinal
// without storing per-node training data.
func (t *Tree) accumImportance(n *Node, imp []float64) {
	if n == nil || n.IsLeaf() {
		return
	}
	if n.Feature >= 0 && n.Feature < len(imp) {
		imp[n.Feature] += float64(n.N)
	}
	t.accumImportance(n.Left, imp)
	t.accumImportance(n.Right, imp)
}

// Dump renders the tree structure for debugging and documentation, with
// optional feature names (index labels are used when names run short).
func (t *Tree) Dump(featureNames []string) string {
	var b strings.Builder
	t.dumpNode(&b, t.Root, 0, featureNames)
	return b.String()
}

func (t *Tree) dumpNode(b *strings.Builder, n *Node, depth int, names []string) {
	indent := strings.Repeat("  ", depth)
	if n == nil {
		fmt.Fprintf(b, "%s<nil>\n", indent)
		return
	}
	if n.IsLeaf() {
		if n.Model != nil {
			fmt.Fprintf(b, "%sleaf n=%d MLR(intercept=%.3g, %d coeffs)\n", indent, n.N, n.Model.Intercept, len(n.Model.Coeffs))
		} else {
			fmt.Fprintf(b, "%sleaf n=%d mean=%.3g\n", indent, n.N, n.Mean)
		}
		return
	}
	name := fmt.Sprintf("x%d", n.Feature)
	if n.Feature < len(names) {
		name = names[n.Feature]
	}
	fmt.Fprintf(b, "%s%s <= %.4g (n=%d)\n", indent, name, n.Threshold, n.N)
	t.dumpNode(b, n.Left, depth+1, names)
	t.dumpNode(b, n.Right, depth+1, names)
}
