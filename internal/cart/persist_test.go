package cart

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"testing"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	n := 300
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{x0, x1}
		ys[i] = 2*x0 - x1
		if x0 > 0.5 {
			ys[i] += 10
		}
	}
	tree, err := Fit(rows, ys, Config{MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Leaves() != tree.Leaves() || back.Depth() != tree.Depth() {
		t.Errorf("structure differs: %d/%d leaves, %d/%d depth",
			back.Leaves(), tree.Leaves(), back.Depth(), tree.Depth())
	}
	for i := 0; i < 50; i++ {
		probe := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if math.Abs(tree.Predict(probe)-back.Predict(probe)) > 1e-9 {
			t.Fatalf("prediction differs at probe %v", probe)
		}
	}
}

func TestTreeUnmarshalValidation(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{`), &tr); err == nil {
		t.Error("bad JSON should error")
	}
	if err := json.Unmarshal([]byte(`{"min_y":0,"max_y":1,"bounds":true}`), &tr); err == nil {
		t.Error("missing root should error")
	}
	oneChild := `{"root":{"Feature":0,"Threshold":1,"Left":{"Mean":1,"N":1}},"bounds":false}`
	if err := json.Unmarshal([]byte(oneChild), &tr); err == nil {
		t.Error("single-child internal node should error")
	}
}
