// Package cart implements the Classification And Regression Tree used by
// the paper's spatiotemporal model (§VI): the feature space is partitioned
// recursively and each leaf carries a simple model — a multivariate linear
// regression (a "model tree"), exactly the construction of Eqs. 8–10.
// Pruning follows the paper's rule of retaining a fraction of the root
// standard deviation (88% in §VI-B): a node whose target standard deviation
// has already dropped below (1 - retain) of the root's is not split further,
// and subtrees that do not beat their parent's leaf model are collapsed.
package cart

import (
	"errors"
	"math"
	"sort"

	"repro/internal/regress"
	"repro/internal/stats"
)

// ErrNoData is returned when a tree is grown with no samples.
var ErrNoData = errors.New("cart: no training samples")

// Config controls tree induction.
type Config struct {
	// MinLeaf is the minimum number of samples in a leaf. Default 4.
	MinLeaf int
	// MaxDepth bounds the tree depth. Default 8.
	MaxDepth int
	// StdDevRetain is the paper's pruning knob: growth stops once a node's
	// standard deviation falls below (1 - StdDevRetain) of the root
	// standard deviation. Default 0.88 (§VI-B).
	StdDevRetain float64
	// LeafModel selects the per-leaf predictor.
	LeafModel LeafKind
}

// LeafKind selects what model a leaf carries.
type LeafKind int

// Leaf model kinds. LeafMLR is the paper's choice.
const (
	LeafMLR  LeafKind = iota + 1 // multivariate linear regression (default)
	LeafMean                     // constant mean predictor
)

func (c Config) withDefaults() Config {
	if c.MinLeaf < 1 {
		c.MinLeaf = 4
	}
	if c.MaxDepth < 1 {
		c.MaxDepth = 8
	}
	if c.StdDevRetain <= 0 || c.StdDevRetain >= 1 {
		c.StdDevRetain = 0.88
	}
	if c.LeafModel == 0 {
		c.LeafModel = LeafMLR
	}
	return c
}

// Node is a tree node. Internal nodes route on Feature <= Threshold;
// leaves predict with Model (MLR) or Mean.
type Node struct {
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	Model *regress.Model // leaf MLR (nil for mean-only leaves)
	Mean  float64
	N     int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a fitted regression model tree.
type Tree struct {
	Root   *Node
	cfg    Config
	minY   float64
	maxY   float64
	bounds bool
}

// Fit grows a model tree on rows (feature vectors) and targets ys.
func Fit(rows [][]float64, ys []float64, cfg Config) (*Tree, error) {
	if len(rows) == 0 || len(rows) != len(ys) {
		return nil, ErrNoData
	}
	c := cfg.withDefaults()
	rootStd := stats.StdDev(ys)
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{cfg: c}
	mn, _ := stats.Min(ys)
	mx, _ := stats.Max(ys)
	t.minY, t.maxY, t.bounds = mn, mx, true
	t.Root = t.grow(rows, ys, idx, 0, rootStd)
	t.prune(t.Root, rows, ys, collect(idx))
	return t, nil
}

func collect(idx []int) []int {
	out := make([]int, len(idx))
	copy(out, idx)
	return out
}

func (t *Tree) grow(rows [][]float64, ys []float64, idx []int, depth int, rootStd float64) *Node {
	node := t.makeLeaf(rows, ys, idx)
	if len(idx) < 2*t.cfg.MinLeaf || depth >= t.cfg.MaxDepth {
		return node
	}
	sub := make([]float64, len(idx))
	for i, j := range idx {
		sub[i] = ys[j]
	}
	if stats.StdDev(sub) <= (1-t.cfg.StdDevRetain)*rootStd {
		return node // paper's std-dev stop: variation already explained
	}
	feat, thr, ok := t.bestSplit(rows, ys, idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, j := range idx {
		if rows[j][feat] <= thr {
			left = append(left, j)
		} else {
			right = append(right, j)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return node
	}
	node.Feature = feat
	node.Threshold = thr
	node.Left = t.grow(rows, ys, left, depth+1, rootStd)
	node.Right = t.grow(rows, ys, right, depth+1, rootStd)
	return node
}

// bestSplit scans every feature and candidate threshold for the split that
// minimizes the weighted child SSE (CART variance reduction).
func (t *Tree) bestSplit(rows [][]float64, ys []float64, idx []int) (feat int, thr float64, ok bool) {
	nFeat := len(rows[idx[0]])
	bestSSE := math.Inf(1)
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	for f := 0; f < nFeat; f++ {
		for i, j := range idx {
			pairs[i] = pair{x: rows[j][f], y: ys[j]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		// Prefix sums for O(1) SSE of each candidate split.
		n := len(pairs)
		var sumL, sqL float64
		var sumR, sqR float64
		for _, p := range pairs {
			sumR += p.y
			sqR += p.y * p.y
		}
		for i := 0; i < n-1; i++ {
			y := pairs[i].y
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			if pairs[i].x == pairs[i+1].x {
				continue
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < t.cfg.MinLeaf || int(nr) < t.cfg.MinLeaf {
				continue
			}
			sse := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if sse < bestSSE {
				bestSSE = sse
				feat = f
				thr = (pairs[i].x + pairs[i+1].x) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func (t *Tree) makeLeaf(rows [][]float64, ys []float64, idx []int) *Node {
	sub := make([]float64, len(idx))
	subRows := make([][]float64, len(idx))
	for i, j := range idx {
		sub[i] = ys[j]
		subRows[i] = rows[j]
	}
	node := &Node{Mean: stats.Mean(sub), N: len(idx)}
	if t.cfg.LeafModel == LeafMLR && len(idx) >= len(rows[idx[0]])+2 {
		if m, err := regress.Fit(subRows, sub); err == nil {
			// Keep the MLR only if it beats the constant model in-sample.
			var sseMean float64
			for _, y := range sub {
				d := y - node.Mean
				sseMean += d * d
			}
			if m.RSS < sseMean {
				node.Model = m
			}
		}
	}
	return node
}

// prune collapses internal nodes whose subtree does not beat the node
// treated as a leaf under the M5-style compensated error
// SSE * (n + k) / (n - k), which penalizes the extra parameters deeper
// subtrees spend on fitting noise (the second half of the paper's pruning
// step). It returns the compensated error of the possibly-collapsed node.
func (t *Tree) prune(n *Node, rows [][]float64, ys []float64, idx []int) float64 {
	leafErr := compensate(t.nodeSSE(n, rows, ys, idx), len(idx), leafParams(n))
	if n.IsLeaf() {
		return leafErr
	}
	var left, right []int
	for _, j := range idx {
		if rows[j][n.Feature] <= n.Threshold {
			left = append(left, j)
		} else {
			right = append(right, j)
		}
	}
	subtreeErr := t.prune(n.Left, rows, ys, left) + t.prune(n.Right, rows, ys, right)
	if leafErr <= subtreeErr {
		n.Left, n.Right = nil, nil
		return leafErr
	}
	return subtreeErr
}

// leafParams counts the effective parameters of a node's leaf model, plus
// one for the split decision that created it.
func leafParams(n *Node) int {
	if n.Model != nil {
		return len(n.Model.Coeffs) + 2
	}
	return 2
}

// compensate applies the M5 error multiplier (n + k) / (n - k).
func compensate(sse float64, n, k int) float64 {
	if n <= k {
		return math.Inf(1)
	}
	return sse * float64(n+k) / float64(n-k)
}

// nodeSSE is the SSE over idx when n predicts as a leaf.
func (t *Tree) nodeSSE(n *Node, rows [][]float64, ys []float64, idx []int) float64 {
	var sse float64
	for _, j := range idx {
		var p float64
		if n.Model != nil {
			p = n.Model.Predict(rows[j])
		} else {
			p = n.Mean
		}
		d := ys[j] - p
		sse += d * d
	}
	return sse
}

// Predict routes x down the tree and evaluates the leaf model. Predictions
// are clamped to the training target range, which keeps the small per-leaf
// MLRs from extrapolating wildly on out-of-distribution inputs.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if n.Feature < len(x) && x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	var p float64
	if n.Model != nil {
		p = n.Model.Predict(x)
	} else {
		p = n.Mean
	}
	if t.bounds {
		if p < t.minY {
			p = t.minY
		}
		if p > t.maxY {
			p = t.maxY
		}
	}
	return p
}

// Leaves returns the number of leaves in the tree.
func (t *Tree) Leaves() int { return countLeaves(t.Root) }

// Depth returns the depth of the tree (a lone root has depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

// Nodes returns the total node count (internal + leaves) — the size a
// serving-layer registry reports as the tree's complexity descriptor.
func (t *Tree) Nodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
