package cart

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSingleLeafOnConstantTarget(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	ys := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	tree, err := Fit(rows, ys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 {
		t.Errorf("constant target should yield 1 leaf, got %d", tree.Leaves())
	}
	if got := tree.Predict([]float64{100}); got != 5 {
		t.Errorf("Predict = %v, want 5", got)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	// y = 0 for x<0, 10 for x>=0: one split suffices.
	var rows [][]float64
	var ys []float64
	for i := -20; i < 20; i++ {
		x := float64(i) / 2
		rows = append(rows, []float64{x})
		if x < 0 {
			ys = append(ys, 0)
		} else {
			ys = append(ys, 10)
		}
	}
	tree, err := Fit(rows, ys, Config{MinLeaf: 2, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{-5}); math.Abs(got) > 0.01 {
		t.Errorf("Predict(-5) = %v, want 0", got)
	}
	if got := tree.Predict([]float64{5}); math.Abs(got-10) > 0.01 {
		t.Errorf("Predict(5) = %v, want 10", got)
	}
}

func TestModelTreeLearnsPiecewiseLinear(t *testing.T) {
	// Two linear regimes split on x0 (exactly the construction of the
	// paper's Eqs. 8-10): y = 2x1 for x0 < 0, y = -3x1 + 5 for x0 >= 0.
	rng := rand.New(rand.NewPCG(41, 42))
	n := 400
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.NormFloat64()
		x1 := rng.NormFloat64()
		rows[i] = []float64{x0, x1}
		if x0 < 0 {
			ys[i] = 2 * x1
		} else {
			ys[i] = -3*x1 + 5
		}
	}
	tree, err := Fit(rows, ys, Config{MinLeaf: 10, StdDevRetain: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	probes := 0
	for i := 0; i < n; i++ {
		d := tree.Predict(rows[i]) - ys[i]
		sse += d * d
		probes++
	}
	rmse := math.Sqrt(sse / float64(probes))
	if rmse > 0.8 {
		t.Errorf("model-tree RMSE = %v, want < 0.8", rmse)
	}
}

func TestMeanLeavesVsMLRLeaves(t *testing.T) {
	// On a globally linear target, MLR leaves should dominate mean leaves.
	rng := rand.New(rand.NewPCG(43, 44))
	n := 300
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 2
		rows[i] = []float64{x}
		ys[i] = 3*x + 1
	}
	mlrTree, err := Fit(rows, ys, Config{LeafModel: LeafMLR})
	if err != nil {
		t.Fatal(err)
	}
	meanTree, err := Fit(rows, ys, Config{LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	var sseMLR, sseMean float64
	for i := range rows {
		d1 := mlrTree.Predict(rows[i]) - ys[i]
		d2 := meanTree.Predict(rows[i]) - ys[i]
		sseMLR += d1 * d1
		sseMean += d2 * d2
	}
	if sseMLR >= sseMean {
		t.Errorf("MLR leaves SSE %v should beat mean leaves %v", sseMLR, sseMean)
	}
}

func TestStdDevRetainStopsGrowth(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 46))
	n := 500
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		rows[i] = []float64{x}
		ys[i] = x + rng.NormFloat64()*0.1
	}
	// Aggressive retain (stop early) must produce no more leaves than a
	// permissive one.
	small, err := Fit(rows, ys, Config{StdDevRetain: 0.5, LeafModel: LeafMean, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Fit(rows, ys, Config{StdDevRetain: 0.999, LeafModel: LeafMean, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.Leaves() > big.Leaves() {
		t.Errorf("retain=0.5 leaves %d > retain=0.999 leaves %d", small.Leaves(), big.Leaves())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 48))
	n := 400
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = []float64{rng.Float64()}
		ys[i] = rng.Float64() * 100
	}
	tree, err := Fit(rows, ys, Config{MaxDepth: 3, MinLeaf: 1, StdDevRetain: 0.9999, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 4 {
		t.Errorf("depth = %d, want <= 4", d)
	}
}

// Property: predictions never leave the training target range (the clamp).
func TestPredictionBoundedProperty(t *testing.T) {
	f := func(seed uint64, probeRaw float64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 30 + int(seed%50)
		rows := make([][]float64, n)
		ys := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			rows[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64()}
			ys[i] = rng.NormFloat64() * 5
			if ys[i] < lo {
				lo = ys[i]
			}
			if ys[i] > hi {
				hi = ys[i]
			}
		}
		tree, err := Fit(rows, ys, Config{MinLeaf: 2})
		if err != nil {
			return false
		}
		probe := math.Mod(probeRaw, 1e6)
		if math.IsNaN(probe) {
			probe = 0
		}
		p := tree.Predict([]float64{probe, -probe})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPredictShortFeatureVector(t *testing.T) {
	rows := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}}
	ys := []float64{0, 0, 0, 0, 9, 9, 9, 9}
	tree, err := Fit(rows, ys, Config{MinLeaf: 2, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	// A probe shorter than the split feature index routes right (treated
	// as missing) and must not panic.
	_ = tree.Predict(nil)
	_ = tree.Predict([]float64{1.5})
}

func TestPruneCollapsesUselessSplits(t *testing.T) {
	// Pure noise: pruning should collapse to (near) a single leaf.
	rng := rand.New(rand.NewPCG(49, 50))
	n := 200
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = []float64{rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	tree, err := Fit(rows, ys, Config{MinLeaf: 5, StdDevRetain: 0.999, LeafModel: LeafMLR})
	if err != nil {
		t.Fatal(err)
	}
	// MLR leaves fit noise slightly better in-sample, so allow a few
	// leaves — but a noise fit must stay small relative to n/MinLeaf.
	if tree.Leaves() > 12 {
		t.Errorf("noise tree has %d leaves; pruning looks broken", tree.Leaves())
	}
}

func TestVariableImportance(t *testing.T) {
	// Only feature 0 carries signal.
	rng := rand.New(rand.NewPCG(51, 52))
	n := 300
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 10
		rows[i] = []float64{x0, rng.Float64()}
		ys[i] = 0
		if x0 > 5 {
			ys[i] = 100
		}
	}
	tree, err := Fit(rows, ys, Config{MinLeaf: 5, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.VariableImportance(2)
	if len(imp) != 2 {
		t.Fatalf("importance = %v", imp)
	}
	if imp[0] < 0.9 {
		t.Errorf("feature 0 importance = %v, want > 0.9", imp[0])
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v", sum)
	}
	// A single-leaf tree reports all zeros.
	flat, err := Fit(rows[:20], make([]float64, 20), Config{LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range flat.VariableImportance(2) {
		if v != 0 {
			t.Errorf("flat tree importance = %v", flat.VariableImportance(2))
			break
		}
	}
}

func TestDump(t *testing.T) {
	rows := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	ys := []float64{0, 0, 0, 0, 9, 9, 9, 9}
	tree, err := Fit(rows, ys, Config{MinLeaf: 2, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Dump([]string{"hour"})
	if !strings.Contains(out, "hour <=") {
		t.Errorf("dump missing named split: %q", out)
	}
	if !strings.Contains(out, "leaf") {
		t.Errorf("dump missing leaves: %q", out)
	}
	// Unnamed features fall back to the index label.
	rows2 := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}}
	ys2 := []float64{0, 0, 0, 0, 9, 9, 9, 9}
	tree2, err := Fit(rows2, ys2, Config{MinLeaf: 2, LeafModel: LeafMean})
	if err != nil {
		t.Fatal(err)
	}
	out2 := tree2.Dump(nil)
	if !strings.Contains(out2, "x0 <=") {
		t.Errorf("dump fallback label missing: %q", out2)
	}
}
