package cart_test

import (
	"fmt"

	"repro/internal/cart"
)

// Grow a model tree on a step function and predict both regimes.
func ExampleFit() {
	var rows [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := float64(i)
		rows = append(rows, []float64{x})
		if x < 20 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 9)
		}
	}
	tree, err := cart.Fit(rows, ys, cart.Config{MinLeaf: 2, LeafModel: cart.LeafMean})
	if err != nil {
		panic(err)
	}
	fmt.Printf("leaves=%d\n", tree.Leaves())
	fmt.Printf("f(5)=%.0f f(30)=%.0f\n", tree.Predict([]float64{5}), tree.Predict([]float64{30}))
	// Output:
	// leaves=2
	// f(5)=1 f(30)=9
}
