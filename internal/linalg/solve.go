package linalg

import (
	"math"
)

// SolveLU solves A x = b via LU factorization with partial pivoting.
// A must be square; b must have length A.Rows. A and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, ErrShape
	}
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotVal := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal < 1e-13 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				lu.Data[col*n+j], lu.Data[pivot*n+j] = lu.Data[pivot*n+j], lu.Data[col*n+j]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			for j := col + 1; j < n; j++ {
				lu.Set(r, j, lu.At(r, j)-f*lu.At(col, j))
			}
		}
	}
	// Forward substitution with permuted b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[perm[i]]
		for j := 0; j < i; j++ {
			y[i] -= lu.At(i, j) * y[j]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < n; j++ {
			x[i] -= lu.At(i, j) * x[j]
		}
		x[i] /= lu.At(i, i)
	}
	return x, nil
}

// Cholesky returns the lower-triangular factor L with A = L Lᵀ.
// A must be symmetric positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrShape
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// LeastSquares solves min ||A x - b||₂ via Householder QR. A must have at
// least as many rows as columns and full column rank.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m || m < n || n == 0 {
		return nil, ErrShape
	}
	r := a.Clone()
	qtb := make([]float64, m)
	copy(qtb, b)
	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		var vnorm2 float64
		for _, x := range v {
			vnorm2 += x * x
		}
		if vnorm2 < 1e-26 {
			return nil, ErrSingular
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R's trailing columns and qtb.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i-k])
			}
		}
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i-k] * qtb[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			qtb[i] -= f * v[i-k]
		}
	}
	// Back substitution on the upper-triangular leading n-by-n block.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-13 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// RidgeLeastSquares solves the Tikhonov-regularized least squares problem
// min ||A x - b||² + lambda ||x||² via the normal equations and Cholesky.
// It is used as a fallback when plain least squares is singular.
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, ErrShape
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, err
	}
	n := l.Rows
	// Solve L y = atb, then Lᵀ x = y.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := atb[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
