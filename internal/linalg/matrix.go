// Package linalg implements the dense linear algebra needed by the
// regression, ARIMA, and neural-network packages: matrix arithmetic, LU and
// Cholesky factorizations, and Householder-QR least squares.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero r-by-c matrix. It panics if r or c is negative.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: ragged row %d", ErrShape, i)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowOut[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*len %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m+b as a new matrix.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Scale returns alpha*m as a new matrix.
func (m *Matrix) Scale(alpha float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= alpha
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and b, or +Inf on shape mismatch. Useful for tests.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range m.Data {
		if a := math.Abs(m.Data[i] - b.Data[i]); a > d {
			d = a
		}
	}
	return d
}
