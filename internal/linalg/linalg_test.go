package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("accessor mismatch: %+v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Error("Set did not stick")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows should give 0x0")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Mul = %+v, want %+v", c, want)
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	i3 := Identity(3)
	c, err := a.Mul(i3)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxAbsDiff(a) > 1e-12 {
		t.Error("A*I != A")
	}
}

func TestMulVecAddScaleT(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("MulVec shape mismatch should error")
	}
	sum, err := a.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 2 || sum.At(1, 1) != 8 {
		t.Errorf("Add = %+v", sum)
	}
	if _, err := a.Add(NewMatrix(1, 1)); err == nil {
		t.Error("Add shape mismatch should error")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Errorf("Scale = %+v", sc)
	}
	tr := a.T()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Errorf("T = %+v", tr)
	}
}

func TestSolveLU(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x = %v, want %v", x, want)
			break
		}
	}
	// Singular matrix.
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(sing, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
	if _, err := SolveLU(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should error")
	}
}

// Property: for random well-conditioned systems, A*x == b after SolveLU.
func TestSolveLUProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance ensures nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax, _ := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v", trial, ax[i]-b[i])
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt, _ := l.Mul(l.T())
	if llt.MaxAbsDiff(a) > 1e-9 {
		t.Errorf("L*Lt != A: %+v", llt)
	}
	notPD, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(notPD); err == nil {
		t.Error("non-PD matrix should error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 1 + 2x.
	a, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("x = %v, want [1 2]", x)
	}
	// Underdetermined input shape should error.
	if _, err := LeastSquares(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("m < n should error")
	}
	// Rank-deficient should error.
	rd, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(rd, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient should error")
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestLeastSquaresOrthogonalityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		m := 5 + rng.IntN(10)
		n := 1 + rng.IntN(4)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			continue // random rank deficiency is acceptable
		}
		ax, _ := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		proj, _ := a.T().MulVec(res)
		for _, v := range proj {
			if math.Abs(v) > 1e-6 {
				t.Fatalf("trial %d: At*r = %v, want ~0", trial, proj)
			}
		}
	}
}

func TestRidgeLeastSquares(t *testing.T) {
	// Perfectly collinear columns: plain LS fails, ridge succeeds.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := RidgeLeastSquares(a, b, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction should still be accurate even if coefficients split.
	ax, _ := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-2 {
			t.Errorf("ridge prediction %v vs %v", ax[i], b[i])
		}
	}
	if _, err := RidgeLeastSquares(a, []float64{1}, 1e-4); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if d := NewMatrix(1, 2).MaxAbsDiff(NewMatrix(2, 1)); !math.IsInf(d, 1) {
		t.Errorf("shape mismatch diff = %v, want +Inf", d)
	}
}

// Property via testing/quick: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		cols := 1 + len(vals)%4
		rows := (len(vals) + cols - 1) / cols
		m := NewMatrix(rows, cols)
		copy(m.Data, vals)
		return m.T().T().MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
