package botnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/stats"
)

func testTopology(t *testing.T) *astopo.Topology {
	t.Helper()
	topo, err := astopo.Synthesize(astopo.SynthConfig{Tier1: 3, Tier2: 8, Stubs: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func smallFamilies() []Profile {
	return ScaleProfiles(DefaultFamilies(), 0.1)
}

func TestSimulateRequiresTopology(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Error("missing topology should error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	topo := testTopology(t)
	cfg := SimConfig{Families: smallFamilies()[:3], Topology: topo, HorizonDays: 60, Seed: 4}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic sizes %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Attacks {
		x, y := a.Attacks[i], b.Attacks[i]
		if x.ID != y.ID || !x.Start.Equal(y.Start) || x.TargetIP != y.TargetIP || len(x.Bots) != len(y.Bots) {
			t.Fatalf("attack %d differs", i)
		}
	}
}

func TestSimulateBasicInvariants(t *testing.T) {
	topo := testTopology(t)
	ds, err := Simulate(SimConfig{Families: smallFamilies(), Topology: topo, HorizonDays: 90, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("no attacks generated")
	}
	start := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 91)
	for i := range ds.Attacks {
		a := &ds.Attacks[i]
		if a.Start.Before(start) || a.Start.After(end) {
			t.Fatalf("attack %d outside horizon: %v", a.ID, a.Start)
		}
		if a.DurationSec < 30 || a.DurationSec > 48*3600 {
			t.Fatalf("attack %d duration %v out of bounds", a.ID, a.DurationSec)
		}
		if len(a.Bots) == 0 {
			t.Fatalf("attack %d has no bots", a.ID)
		}
		seen := make(map[astopo.IPv4]bool)
		for _, b := range a.Bots {
			if seen[b] {
				t.Fatalf("attack %d has duplicate bot %v", a.ID, b)
			}
			seen[b] = true
			// Every bot IP must be routable in the topology.
			if _, ok := topo.IPMap.Lookup(b); !ok {
				t.Fatalf("bot %v unrouted", b)
			}
		}
		if as, ok := topo.IPMap.Lookup(a.TargetIP); !ok || as != a.TargetAS {
			t.Fatalf("target %v AS mismatch", a.TargetIP)
		}
	}
}

func TestSimulateReproducesTableIShape(t *testing.T) {
	topo := testTopology(t)
	// Full-size profiles over the full horizon to check Table I stats.
	ds, err := Simulate(SimConfig{Topology: topo, HorizonDays: 220, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	profiles := DefaultFamilies()
	for _, p := range profiles {
		attacks := ds.ByFamily(p.Name)
		if len(attacks) == 0 {
			t.Errorf("%s: no attacks", p.Name)
			continue
		}
		// Daily counts over active days.
		counts := make(map[string]int)
		for i := range attacks {
			counts[attacks[i].Start.Format("2006-01-02")]++
		}
		daily := make([]float64, 0, len(counts))
		for _, c := range counts {
			daily = append(daily, float64(c))
		}
		avg := stats.Mean(daily)
		// Allow generous tolerance: active-day counting differs slightly
		// (days with zero attacks are excluded here as in Table I).
		if math.Abs(avg-p.AvgPerDay)/p.AvgPerDay > 0.5 {
			t.Errorf("%s: avg/day = %.2f, want ~%.2f", p.Name, avg, p.AvgPerDay)
		}
		// Sample CV of a short autocorrelated count series is noisy
		// (effective sample size shrinks by (1-rho)/(1+rho)), so scale
		// the tolerance with the target and the number of active days.
		cv := stats.CV(daily)
		tol := 0.5 * p.CV
		if p.ActiveDays < 120 {
			tol = 0.75 * p.CV
		}
		if math.Abs(cv-p.CV) > tol {
			t.Errorf("%s: CV = %.2f, want ~%.2f (tol %.2f)", p.Name, cv, p.CV, tol)
		}
	}
	// DirtJumper must dominate volume; AldiBot must be smallest-ish.
	fams := ds.Families()
	if fams[0] != "DirtJumper" {
		t.Errorf("most active = %s, want DirtJumper", fams[0])
	}
}

func TestSimulateGeolocationAffinity(t *testing.T) {
	topo := testTopology(t)
	ds, err := Simulate(SimConfig{Families: smallFamilies()[:2], Topology: topo, HorizonDays: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Bots of one family should concentrate in few ASes.
	for _, fam := range ds.Families() {
		asSet := make(map[astopo.AS]int)
		var total int
		for _, a := range ds.ByFamily(fam) {
			for _, b := range a.Bots {
				if as, ok := topo.IPMap.Lookup(b); ok {
					asSet[as]++
					total++
				}
			}
		}
		if len(asSet) == 0 {
			t.Fatalf("%s: no mapped bots", fam)
		}
		if len(asSet) > 8 {
			t.Errorf("%s: bots spread over %d ASes, want concentrated", fam, len(asSet))
		}
	}
}

func TestSimulateDiurnalPattern(t *testing.T) {
	topo := testTopology(t)
	profiles := ScaleProfiles(DefaultFamilies(), 0.5)
	ds, err := Simulate(SimConfig{Families: profiles[1:2], Topology: topo, HorizonDays: 220, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// BlackEnergy peaks at hour 14; the circular mean hour should be
	// within a few hours of that.
	var sinSum, cosSum float64
	for i := range ds.Attacks {
		h := float64(ds.Attacks[i].Hour())
		sinSum += math.Sin(2 * math.Pi * h / 24)
		cosSum += math.Cos(2 * math.Pi * h / 24)
	}
	meanHour := math.Atan2(sinSum, cosSum) * 24 / (2 * math.Pi)
	if meanHour < 0 {
		meanHour += 24
	}
	diff := math.Abs(meanHour - 14)
	if diff > 12 {
		diff = 24 - diff
	}
	if diff > 3 {
		t.Errorf("circular mean hour = %.1f, want ~14", meanHour)
	}
}

func TestScaleProfiles(t *testing.T) {
	base := DefaultFamilies()
	scaled := ScaleProfiles(base, 0.1)
	if len(scaled) != len(base) {
		t.Fatal("length changed")
	}
	for i := range scaled {
		if scaled[i].AvgPerDay > base[i].AvgPerDay && base[i].AvgPerDay > 3 {
			t.Errorf("%s: scaling increased volume", scaled[i].Name)
		}
		if scaled[i].Targets < 4 {
			t.Errorf("%s: targets floor violated", scaled[i].Name)
		}
		if scaled[i].CV != base[i].CV {
			t.Errorf("%s: CV should be preserved", scaled[i].Name)
		}
	}
	// Invalid factors are treated as identity.
	same := ScaleProfiles(base, 0)
	if same[0].AvgPerDay != base[0].AvgPerDay {
		t.Error("factor 0 should be identity")
	}
}

func TestDefaultFamiliesMatchTableI(t *testing.T) {
	fams := DefaultFamilies()
	if len(fams) != 10 {
		t.Fatalf("families = %d, want 10", len(fams))
	}
	want := map[string][3]float64{
		"AldiBot":     {1.29, 204, 0.77},
		"BlackEnergy": {5.93, 220, 0.82},
		"Colddeath":   {7.52, 118, 1.53},
		"Darkshell":   {9.98, 210, 1.14},
		"DDoSer":      {2.13, 211, 0.84},
		"DirtJumper":  {144.30, 220, 0.77},
		"Nitol":       {2.91, 208, 1.05},
		"Optima":      {3.19, 220, 0.90},
		"Pandora":     {40.08, 165, 1.27},
		"YZF":         {6.28, 72, 1.41},
	}
	for _, f := range fams {
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("unexpected family %s", f.Name)
			continue
		}
		if f.AvgPerDay != w[0] || float64(f.ActiveDays) != w[1] || f.CV != w[2] {
			t.Errorf("%s: got (%v,%d,%v), want %v", f.Name, f.AvgPerDay, f.ActiveDays, f.CV, w)
		}
	}
}

func TestSimulatePerTargetHourConsistency(t *testing.T) {
	topo := testTopology(t)
	profiles := ScaleProfiles(DefaultFamilies(), 0.5)
	ds, err := Simulate(SimConfig{Families: profiles[5:6], Topology: topo, HorizonDays: 220, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Within one (family, target) pair, launch hours concentrate around
	// the pair's preferred hour: the per-pair std must sit well below the
	// family-wide spread.
	byTarget := ds.ByTarget()
	var perPair, famWide []float64
	for _, group := range byTarget {
		if len(group) < 10 {
			continue
		}
		hours := make([]float64, len(group))
		for i := range group {
			hours[i] = float64(group[i].Hour())
		}
		perPair = append(perPair, stats.StdDev(hours))
	}
	for i := range ds.Attacks {
		famWide = append(famWide, float64(ds.Attacks[i].Hour()))
	}
	if len(perPair) < 3 {
		t.Skip("not enough busy targets at this scale")
	}
	if stats.Mean(perPair) >= stats.StdDev(famWide) {
		t.Errorf("per-target hour std %.2f should be below family-wide %.2f",
			stats.Mean(perPair), stats.StdDev(famWide))
	}
	// Preferred hours stay clear of the midnight wrap: almost all attacks
	// land between 02 and 23.
	var wrapped int
	for i := range ds.Attacks {
		h := ds.Attacks[i].Hour()
		if h < 2 || h > 22 {
			wrapped++
		}
	}
	if frac := float64(wrapped) / float64(ds.Len()); frac > 0.1 {
		t.Errorf("%.1f%% of attacks near the midnight wrap, want < 10%%", 100*frac)
	}
}

func TestSimulateMagnitudeAutocorrelation(t *testing.T) {
	topo := testTopology(t)
	profiles := ScaleProfiles(DefaultFamilies(), 0.5)
	ds, err := Simulate(SimConfig{Families: profiles[8:9], Topology: topo, HorizonDays: 220, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	attacks := ds.ByFamily("Pandora")
	if len(attacks) < 200 {
		t.Fatalf("only %d Pandora attacks", len(attacks))
	}
	mags := make([]float64, len(attacks))
	for i := range attacks {
		mags[i] = float64(attacks[i].Magnitude())
	}
	// The AR(1) log-magnitude process must leave visible lag-1
	// autocorrelation for the temporal model to exploit (Figure 1).
	// (per-victim magnitude offsets and integer rounding dilute the raw
	// AR(1) correlation, so the bound is conservative).
	if ac := stats.Autocorrelation(mags, 1); ac < 0.2 {
		t.Errorf("magnitude lag-1 autocorrelation = %.2f, want >= 0.2", ac)
	}
}

func TestSimulateRevisitCadence(t *testing.T) {
	topo := testTopology(t)
	// DirtJumper revisits targets about every 2 days.
	profiles := ScaleProfiles(DefaultFamilies(), 0.3)
	ds, err := Simulate(SimConfig{Families: profiles[5:6], Topology: topo, HorizonDays: 220, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	byTarget := ds.ByTarget()
	var medians []float64
	for _, group := range byTarget {
		if len(group) < 20 {
			continue
		}
		gaps := make([]float64, 0, len(group)-1)
		for i := 1; i < len(group); i++ {
			gaps = append(gaps, group[i].Start.Sub(group[i-1].Start).Hours()/24)
		}
		medians = append(medians, stats.Median(gaps))
	}
	if len(medians) < 3 {
		t.Skip("not enough busy targets")
	}
	// The overdue boost produces a quasi-periodic cadence: median revisit
	// gaps for busy targets land within a few days of the profile period.
	med := stats.Median(medians)
	if med < 0.2 || med > 8 {
		t.Errorf("median revisit gap = %.1f days, want within [0.2, 8]", med)
	}
}

func TestSimulateTakedownShiftsSources(t *testing.T) {
	topo := testTopology(t)
	profiles := ScaleProfiles(DefaultFamilies(), 0.5)
	fam := profiles[5] // DirtJumper
	ds, err := Simulate(SimConfig{
		Families:    []Profile{fam},
		Topology:    topo,
		HorizonDays: 220,
		Takedowns:   []Takedown{{Family: fam.Name, Day: 110}},
		Seed:        41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-takedown dominant source AS must (almost) vanish afterwards.
	cut := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 112)
	preCounts := make(map[astopo.AS]int)
	postCounts := make(map[astopo.AS]int)
	var preTotal, postTotal int
	for i := range ds.Attacks {
		a := &ds.Attacks[i]
		counts, total := preCounts, &preTotal
		if a.Start.After(cut) {
			counts, total = postCounts, &postTotal
		}
		for _, b := range a.Bots {
			if as, ok := topo.IPMap.Lookup(b); ok {
				counts[as]++
				*total++
			}
		}
	}
	if preTotal == 0 || postTotal == 0 {
		t.Fatal("missing traffic on one side of the takedown")
	}
	var top astopo.AS
	for as, c := range preCounts {
		if c > preCounts[top] {
			top = as
		}
	}
	preShare := float64(preCounts[top]) / float64(preTotal)
	postShare := float64(postCounts[top]) / float64(postTotal)
	if preShare < 0.2 {
		t.Fatalf("pre-takedown top share only %.2f", preShare)
	}
	if postShare > preShare/4 {
		t.Errorf("takedown did not stick: top AS share %.2f -> %.2f", preShare, postShare)
	}
}
