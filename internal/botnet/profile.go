// Package botnet simulates the attacker side of the paper's ecosystem: the
// ten most active botnet families of Table I, each with its activity level
// (average attacks per day, active days, coefficient of variation),
// geolocation (AS) affinity, diurnal launching preferences, per-target
// scheduling, duration and magnitude processes, and bot-pool churn. The
// simulator emits trace.Attack records with the statistical structure the
// paper's models exploit; see DESIGN.md for the substitution argument.
package botnet

// Profile parameterizes one botnet family's behavior.
type Profile struct {
	// Name is the family label.
	Name string
	// AvgPerDay, ActiveDays, and CV reproduce Table I: mean verified
	// attacks per active day, number of active days, and coefficient of
	// variation of the daily counts.
	AvgPerDay  float64
	ActiveDays int
	CV         float64

	// DailyRho is the day-to-day autocorrelation of the latent attack
	// intensity; it gives the family-level series the AR structure the
	// temporal model captures.
	DailyRho float64

	// PeakHour is the center of the family's diurnal launching profile
	// (botmasters schedule attacks by their own clock), and HourSigma the
	// residual spread around the per-target preferred hour.
	PeakHour  float64
	HourSigma float64
	// TargetHourSigma spreads each target's preferred hour around
	// PeakHour, creating the target-local pattern only the spatiotemporal
	// model can fully exploit.
	TargetHourSigma float64

	// MagBase is the typical bot magnitude of one attack; MagRho/MagSigma
	// drive the AR(1) log-magnitude process across the family's attacks;
	// MagTrend adds a slow drift over the family's lifetime (BlackEnergy's
	// prediction offset in Fig. 1 stems from such a drift).
	MagBase  float64
	MagRho   float64
	MagSigma float64
	MagTrend float64

	// DurLogMean/DurLogSigma parameterize the lognormal attack duration
	// in seconds; TargetDurSigma adds a per-target multiplier so duration
	// carries target-local signal.
	DurLogMean     float64
	DurLogSigma    float64
	TargetDurSigma float64

	// PoolSize is the family's bot population; ChurnRate the fraction of
	// the pool replaced per day (recruiting and dormancy).
	PoolSize  int
	ChurnRate float64
	// HomeASes is the number of stub ASes the family's bots concentrate
	// in, and HomeZipfS the concentration exponent (families have
	// geolocation preferences, §II-B).
	HomeASes  int
	HomeZipfS float64

	// Targets is the number of victims the family rotates over;
	// TargetZipfS the popularity skew; PeriodDays the typical revisit
	// period of a given target (multistage attack cadence).
	Targets     int
	TargetZipfS float64
	PeriodDays  float64
}

// DefaultFamilies returns the ten Table I families with behavior
// parameters calibrated so the generated dataset reproduces the table and
// exposes the temporal/spatial/spatiotemporal structure of §IV–§VI.
func DefaultFamilies() []Profile {
	return []Profile{
		{
			Name: "AldiBot", AvgPerDay: 1.29, ActiveDays: 204, CV: 0.77,
			DailyRho: 0.5, PeakHour: 8, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 25, MagRho: 0.8, MagSigma: 0.25,
			DurLogMean: 7.2, DurLogSigma: 0.7, TargetDurSigma: 0.4,
			PoolSize: 400, ChurnRate: 0.02, HomeASes: 4, HomeZipfS: 1.2,
			Targets: 12, TargetZipfS: 1.0, PeriodDays: 6,
		},
		{
			Name: "BlackEnergy", AvgPerDay: 5.93, ActiveDays: 220, CV: 0.82,
			DailyRho: 0.6, PeakHour: 14, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 80, MagRho: 0.85, MagSigma: 0.2, MagTrend: 0.5,
			DurLogMean: 7.8, DurLogSigma: 0.6, TargetDurSigma: 0.35,
			PoolSize: 1500, ChurnRate: 0.03, HomeASes: 6, HomeZipfS: 1.1,
			Targets: 30, TargetZipfS: 1.1, PeriodDays: 4,
		},
		{
			Name: "Colddeath", AvgPerDay: 7.52, ActiveDays: 118, CV: 1.53,
			DailyRho: 0.7, PeakHour: 18, HourSigma: 1.3, TargetHourSigma: 3,
			MagBase: 45, MagRho: 0.85, MagSigma: 0.3,
			DurLogMean: 7.0, DurLogSigma: 0.8, TargetDurSigma: 0.45,
			PoolSize: 700, ChurnRate: 0.05, HomeASes: 5, HomeZipfS: 1.3,
			Targets: 25, TargetZipfS: 1.2, PeriodDays: 3,
		},
		{
			Name: "Darkshell", AvgPerDay: 9.98, ActiveDays: 210, CV: 1.14,
			DailyRho: 0.65, PeakHour: 9, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 60, MagRho: 0.8, MagSigma: 0.25,
			DurLogMean: 7.5, DurLogSigma: 0.7, TargetDurSigma: 0.4,
			PoolSize: 900, ChurnRate: 0.04, HomeASes: 5, HomeZipfS: 1.2,
			Targets: 35, TargetZipfS: 1.1, PeriodDays: 3.5,
		},
		{
			Name: "DDoSer", AvgPerDay: 2.13, ActiveDays: 211, CV: 0.84,
			DailyRho: 0.55, PeakHour: 11, HourSigma: 1.1, TargetHourSigma: 3,
			MagBase: 30, MagRho: 0.8, MagSigma: 0.25,
			DurLogMean: 7.1, DurLogSigma: 0.7, TargetDurSigma: 0.4,
			PoolSize: 500, ChurnRate: 0.03, HomeASes: 4, HomeZipfS: 1.2,
			Targets: 15, TargetZipfS: 1.0, PeriodDays: 7,
		},
		{
			Name: "DirtJumper", AvgPerDay: 144.30, ActiveDays: 220, CV: 0.77,
			DailyRho: 0.6, PeakHour: 16, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 120, MagRho: 0.9, MagSigma: 0.15,
			DurLogMean: 7.6, DurLogSigma: 0.6, TargetDurSigma: 0.35,
			PoolSize: 5000, ChurnRate: 0.03, HomeASes: 8, HomeZipfS: 1.0,
			Targets: 120, TargetZipfS: 1.2, PeriodDays: 2,
		},
		{
			Name: "Nitol", AvgPerDay: 2.91, ActiveDays: 208, CV: 1.05,
			DailyRho: 0.6, PeakHour: 17.5, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 35, MagRho: 0.75, MagSigma: 0.3,
			DurLogMean: 7.0, DurLogSigma: 0.75, TargetDurSigma: 0.45,
			PoolSize: 600, ChurnRate: 0.04, HomeASes: 5, HomeZipfS: 1.3,
			Targets: 18, TargetZipfS: 1.1, PeriodDays: 5,
		},
		{
			Name: "Optima", AvgPerDay: 3.19, ActiveDays: 220, CV: 0.90,
			DailyRho: 0.55, PeakHour: 8.5, HourSigma: 1.2, TargetHourSigma: 3,
			MagBase: 40, MagRho: 0.8, MagSigma: 0.25,
			DurLogMean: 7.3, DurLogSigma: 0.7, TargetDurSigma: 0.4,
			PoolSize: 650, ChurnRate: 0.03, HomeASes: 5, HomeZipfS: 1.2,
			Targets: 20, TargetZipfS: 1.0, PeriodDays: 5,
		},
		{
			Name: "Pandora", AvgPerDay: 40.08, ActiveDays: 165, CV: 1.27,
			DailyRho: 0.7, PeakHour: 10, HourSigma: 1.1, TargetHourSigma: 3,
			MagBase: 100, MagRho: 0.9, MagSigma: 0.18,
			DurLogMean: 7.7, DurLogSigma: 0.65, TargetDurSigma: 0.35,
			PoolSize: 2500, ChurnRate: 0.04, HomeASes: 7, HomeZipfS: 1.1,
			Targets: 60, TargetZipfS: 1.2, PeriodDays: 2.5,
		},
		{
			Name: "YZF", AvgPerDay: 6.28, ActiveDays: 72, CV: 1.41,
			DailyRho: 0.7, PeakHour: 13, HourSigma: 1.3, TargetHourSigma: 3,
			MagBase: 50, MagRho: 0.7, MagSigma: 0.3,
			DurLogMean: 6.9, DurLogSigma: 0.8, TargetDurSigma: 0.45,
			PoolSize: 550, ChurnRate: 0.06, HomeASes: 4, HomeZipfS: 1.3,
			Targets: 14, TargetZipfS: 1.1, PeriodDays: 4,
		},
	}
}

// ScaleProfiles returns a copy of the profiles with attack volume and
// population scaled by f (0 < f <= 1), keeping CV and structure intact.
// Used to generate laptop-sized datasets for tests and quick examples.
func ScaleProfiles(ps []Profile, f float64) []Profile {
	if f <= 0 || f > 1 {
		f = 1
	}
	out := make([]Profile, len(ps))
	copy(out, ps)
	for i := range out {
		out[i].AvgPerDay *= f
		if out[i].AvgPerDay < 0.3 {
			out[i].AvgPerDay = 0.3
		}
		out[i].PoolSize = int(float64(out[i].PoolSize)*f) + 50
		out[i].MagBase = out[i].MagBase*f + 5
		t := int(float64(out[i].Targets) * f)
		if t < 4 {
			t = 4
		}
		out[i].Targets = t
	}
	return out
}
