package botnet

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/astopo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SimConfig configures a simulation run.
type SimConfig struct {
	// Families to simulate; DefaultFamilies() if empty.
	Families []Profile
	// Topology supplies the AS graph and address plan. Required.
	Topology *astopo.Topology
	// Start is the first day of the observation window. Defaults to
	// 2012-08-01 UTC, the start of the paper's seven-month window.
	Start time.Time
	// HorizonDays is the observation window length. Default 220.
	HorizonDays int
	// GlobalTargets is the size of the shared victim pool families draw
	// their preferred targets from. Default 150.
	GlobalTargets int
	// Takedowns injects infrastructure-takedown events: from the given
	// day on, the family loses its most-populated home AS and its bots
	// re-recruit in the remaining homes. Used by the concept-drift
	// experiment.
	Takedowns []Takedown
	// Seed drives all randomness.
	Seed uint64
}

// Takedown removes a family's top home AS from a given day onward.
type Takedown struct {
	Family string
	Day    int
}

func (c SimConfig) withDefaults() SimConfig {
	if len(c.Families) == 0 {
		c.Families = DefaultFamilies()
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.HorizonDays < 1 {
		c.HorizonDays = 220
	}
	if c.GlobalTargets < 1 {
		c.GlobalTargets = 150
	}
	return c
}

// target is a victim endpoint shared across families.
type target struct {
	ip astopo.IPv4
	as astopo.AS
}

// famTarget holds a family's per-victim behavioral state.
type famTarget struct {
	t          target
	hourOffset float64 // preferred launch hour relative to family peak
	durFactor  float64 // multiplicative (log) duration bias
	magFactor  float64 // multiplicative (log) magnitude bias
	lastDay    int     // last day this victim was hit (-1 if never)
	weight     float64 // Zipf popularity weight
}

// Simulate generates a verified-attack dataset per the configured
// profiles. The output is deterministic in the seed.
func Simulate(cfg SimConfig) (*trace.Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil {
		return nil, errors.New("botnet: SimConfig.Topology is required")
	}
	if len(cfg.Topology.Stubs) < 4 {
		return nil, errors.New("botnet: topology needs at least 4 stub ASes")
	}
	gs := stats.NewSampler(cfg.Seed + 0x51)

	// Shared victim pool: endpoints in stub ASes.
	stubs := cfg.Topology.Stubs
	ipm := cfg.Topology.IPMap
	targets := make([]target, cfg.GlobalTargets)
	for i := range targets {
		as := stubs[gs.IntN(len(stubs))]
		ip, err := ipm.RandomIPIn(as, gs.Float64())
		if err != nil {
			return nil, fmt.Errorf("botnet: target allocation: %w", err)
		}
		targets[i] = target{ip: ip, as: as}
	}

	var attacks []trace.Attack
	nextID := 1
	for fi, p := range cfg.Families {
		fam, err := simulateFamily(&p, fi, cfg, targets, &nextID)
		if err != nil {
			return nil, fmt.Errorf("botnet: family %s: %w", p.Name, err)
		}
		attacks = append(attacks, fam...)
	}
	return trace.New(attacks)
}

func simulateFamily(p *Profile, fi int, cfg SimConfig, globalTargets []target, nextID *int) ([]trace.Attack, error) {
	s := stats.NewSampler(cfg.Seed + uint64(fi)*0x9e37 + 0x13)
	topo := cfg.Topology

	// Geolocation affinity: home stub ASes for this family's bots.
	nHome := p.HomeASes
	if nHome < 1 {
		nHome = 3
	}
	if nHome > len(topo.Stubs) {
		nHome = len(topo.Stubs)
	}
	homeStart := (fi * 5) % len(topo.Stubs)
	homes := make([]astopo.AS, nHome)
	for i := range homes {
		homes[i] = topo.Stubs[(homeStart+i)%len(topo.Stubs)]
	}
	homeZipf := stats.NewZipf(nHome, p.HomeZipfS)

	// Bot pool with daily churn.
	pool := make([]astopo.IPv4, p.PoolSize)
	drawBot := func() astopo.IPv4 {
		as := homes[homeZipf.Sample(s)]
		ip, err := topo.IPMap.RandomIPIn(as, s.Float64())
		if err != nil {
			return 0
		}
		return ip
	}
	for i := range pool {
		pool[i] = drawBot()
	}

	// Preferred victims with per-victim behavior.
	nT := p.Targets
	if nT < 1 {
		nT = 5
	}
	if nT > len(globalTargets) {
		nT = len(globalTargets)
	}
	tZipf := stats.NewZipf(nT, p.TargetZipfS)
	victims := make([]famTarget, nT)
	tStart := (fi * 11) % len(globalTargets)
	for i := range victims {
		// The per-victim hour offset is clipped (two sigmas, and always
		// inside [1, 23] around the family peak) so preferred launch
		// hours stay clear of the midnight wrap: hour labels are linear
		// in [0, 24), and wrap-around would make the prediction task
		// artificially circular.
		offset := s.Normal(0, p.TargetHourSigma)
		lo, hi := -2*p.TargetHourSigma, 2*p.TargetHourSigma
		if l := 4.2 - p.PeakHour; l > lo {
			lo = l
		}
		if h := 19.8 - p.PeakHour; h < hi {
			hi = h
		}
		if offset < lo {
			offset = lo
		}
		if offset > hi {
			offset = hi
		}
		victims[i] = famTarget{
			t:          globalTargets[(tStart+i)%len(globalTargets)],
			hourOffset: offset,
			durFactor:  s.Normal(0, p.TargetDurSigma),
			magFactor:  s.Normal(0, 0.2),
			lastDay:    -1,
			weight:     tZipf.Prob(i),
		}
	}

	// Calendar window inside the horizon, staggered per family. The
	// window is slightly wider than the family's active-day count so that
	// Table I's semantics hold: on an active day (probability pActive)
	// the family launches at least one attack, and the count of attacks
	// on active days averages AvgPerDay with the table's CV.
	window := int(float64(p.ActiveDays)*1.08) + 2
	if window > cfg.HorizonDays {
		window = cfg.HorizonDays
	}
	pActive := float64(p.ActiveDays) / float64(window)
	if pActive > 1 {
		pActive = 1
	}
	maxOffset := cfg.HorizonDays - window
	dayOffset := 0
	if maxOffset > 0 {
		dayOffset = (fi * 13) % (maxOffset + 1)
	}

	// Latent intensity of the extra attacks beyond the first: AR(1)
	// Gaussian with marginal variance s2 chosen so active-day counts
	// N = 1 + M have the target mean and CV (gamma–Poisson-style
	// over-dispersion via a lognormal mixture).
	muM := p.AvgPerDay - 1
	if muM < 0.05 {
		muM = 0.05
	}
	varN := p.CV * p.AvgPerDay * p.CV * p.AvgPerDay
	s2 := math.Log(math.Max(1+(varN-muM)/(muM*muM), 1.0001))
	sigma := math.Sqrt(s2)
	rho := p.DailyRho
	if rho < 0 || rho >= 1 {
		rho = 0.6
	}
	g := s.Normal(0, sigma)

	// AR(1) log-magnitude and log-duration states across the family's
	// attacks; the duration state gives the family-level duration series
	// the autocorrelation the temporal/spatial models exploit (§VII-A).
	magRho := p.MagRho
	if magRho < 0 || magRho >= 1 {
		magRho = 0.8
	}
	const durRho = 0.85
	magState, durState := 0.0, 0.0
	totalAttacks := p.AvgPerDay * float64(p.ActiveDays)
	attackIdx := 0

	// The family's source concentration drifts slowly (recruiting and
	// dormancy, §II-B): the home-AS Zipf exponent follows a mean-
	// reverting AR(1), which makes the A^s series predictable but not a
	// pure random walk.
	zipfState := 0.0

	// Pending takedown day for this family (relative to its window), if
	// any; -1 means none.
	takedownDay := -1
	for _, td := range cfg.Takedowns {
		if td.Family == p.Name {
			takedownDay = td.Day - dayOffset
		}
	}

	var out []trace.Attack
	for d := 0; d < window; d++ {
		// Infrastructure takedown: lose the primary home AS; every bot
		// that lived there re-recruits in the remaining homes.
		if d == takedownDay && nHome > 1 {
			lost := homes[0]
			homes = homes[1:]
			nHome--
			homeZipf = stats.NewZipf(nHome, math.Max(p.HomeZipfS+zipfState, 0.2))
			for i, ip := range pool {
				if as, ok := topo.IPMap.Lookup(ip); ok && as == lost {
					pool[i] = drawBot()
				}
			}
		}
		// Daily churn: retire and recruit bots, with the concentration
		// exponent drifting.
		zipfState = 0.95*zipfState + s.Normal(0, 0.05)
		homeZipf = stats.NewZipf(nHome, math.Max(p.HomeZipfS+zipfState, 0.2))
		churn := int(p.ChurnRate * float64(len(pool)))
		for k := 0; k < churn; k++ {
			pool[s.IntN(len(pool))] = drawBot()
		}
		if s.Float64() >= pActive {
			continue // dormant day
		}
		// Cap the mixture intensity: the lognormal tail otherwise inflates
		// the realized mean of short, high-CV families far above Table I.
		lambda := muM * math.Exp(g-s2/2)
		if lambda > 8*muM {
			lambda = 8 * muM
		}
		n := 1 + s.Poisson(lambda)
		g = rho*g + s.Normal(0, sigma*math.Sqrt(1-rho*rho))

		day := dayOffset + d
		dayStart := cfg.Start.AddDate(0, 0, day)
		for k := 0; k < n; k++ {
			vi := pickVictim(victims, day, p.PeriodDays, s)
			v := &victims[vi]
			v.lastDay = day

			// Launch hour: family peak + victim offset + noise, wrapped.
			h := math.Mod(p.PeakHour+v.hourOffset+s.Normal(0, p.HourSigma), 24)
			if h < 0 {
				h += 24
			}
			startTime := dayStart.Add(time.Duration(h * float64(time.Hour)))
			startTime = startTime.Add(time.Duration(s.IntN(3600)) * time.Second / 60)

			// Magnitude: AR(1) log process + victim bias + lifetime trend.
			magState = magRho*magState + s.Normal(0, p.MagSigma*math.Sqrt(1-magRho*magRho))
			progress := float64(attackIdx) / math.Max(totalAttacks, 1)
			mag := p.MagBase * math.Exp(magState+v.magFactor) * (1 + p.MagTrend*progress)
			nBots := int(mag + 0.5)
			if nBots < 1 {
				nBots = 1
			}
			if nBots > len(pool) {
				nBots = len(pool)
			}

			// Duration: lognormal with victim bias and an AR(1) family
			// state, capped at 48 hours.
			durState = durRho*durState + s.Normal(0, p.DurLogSigma*0.8*math.Sqrt(1-durRho*durRho))
			dur := math.Exp(p.DurLogMean + v.durFactor + durState + s.Normal(0, p.DurLogSigma*0.4))
			if dur > 48*3600 {
				dur = 48 * 3600
			}
			if dur < 30 {
				dur = 30
			}

			bots := sampleBots(pool, nBots, s)
			out = append(out, trace.Attack{
				ID:          *nextID,
				Family:      p.Name,
				Start:       startTime,
				DurationSec: dur,
				TargetIP:    v.t.ip,
				TargetAS:    v.t.as,
				Bots:        bots,
			})
			*nextID++
			attackIdx++
		}
	}
	return out, nil
}

// pickVictim samples a victim index weighted by Zipf popularity with an
// overdue boost: victims not hit for at least the family's revisit period
// are four times likelier, which yields the quasi-periodic multistage
// cadence the spatiotemporal model learns.
func pickVictim(victims []famTarget, day int, period float64, s *stats.Sampler) int {
	var total float64
	for i := range victims {
		w := victims[i].weight
		if victims[i].lastDay < 0 || float64(day-victims[i].lastDay) >= period {
			w *= 4
		}
		total += w
	}
	u := s.Float64() * total
	for i := range victims {
		w := victims[i].weight
		if victims[i].lastDay < 0 || float64(day-victims[i].lastDay) >= period {
			w *= 4
		}
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(victims) - 1
}

// sampleBots draws n distinct bots from the pool via partial
// Fisher–Yates over a scratch index slice.
func sampleBots(pool []astopo.IPv4, n int, s *stats.Sampler) []astopo.IPv4 {
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	if n > len(pool) {
		n = len(pool)
	}
	out := make([]astopo.IPv4, 0, n)
	seen := make(map[astopo.IPv4]bool, n)
	for i := 0; i < len(idx) && len(out) < n; i++ {
		j := i + s.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		ip := pool[idx[i]]
		if ip == 0 || seen[ip] {
			continue
		}
		seen[ip] = true
		out = append(out, ip)
	}
	return out
}
