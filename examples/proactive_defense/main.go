// Proactive defense provisioning (the paper's motivating use case, §VII-B):
// a mitigation provider must reserve scrubbing capacity for a customer. A
// static defense provisions for the worst case all the time; a predictive
// defense uses the temporal model's magnitude forecast (with its
// confidence band) to scale capacity only when a large attack is expected,
// and the remaining-duration model to decide when mitigation can stand
// down. The example walks forward through the test window and compares
// reserved capacity (cost) and absorbed attack volume (effectiveness).
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/features"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	world, err := ddos.NewWorld(ddos.Config{Seed: 11, Scale: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fam := world.Families()[0]
	attacks := world.Dataset().ByFamily(fam)
	mags := features.MagnitudeSeries(attacks)
	train, test := timeseries.SplitFrac(mags, 0.8)
	fmt.Printf("family %s: %d attacks (%d train / %d test)\n\n", fam, len(mags), len(train), len(test))

	// Walk-forward point forecasts plus a 95% upper band from the model's
	// residual variance.
	pred := &core.ARIMAPredictor{}
	if err := pred.Fit(train); err != nil {
		log.Fatal(err)
	}
	point := make([]float64, len(test))
	upper := make([]float64, len(test))
	for i, x := range test {
		p, err := pred.PredictNext()
		if err != nil {
			log.Fatal(err)
		}
		point[i] = p
		upper[i] = p + 2*rmseOf(train)
		pred.Update(x)
	}

	plans, err := defense.PlanFromForecast(point, upper, defense.PlannerConfig{Floor: median(train)})
	if err != nil {
		log.Fatal(err)
	}
	predictive, err := defense.Evaluate(plans, test)
	if err != nil {
		log.Fatal(err)
	}
	static, err := defense.Evaluate(defense.StaticPlan(max(train), len(test)), test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strategy      mean reserved   miss rate   utilization")
	fmt.Printf("static        %13.1f   %9.2f%%   %11.2f\n",
		static.MeanReserved, 100*static.MissRate, static.Utilization)
	fmt.Printf("predictive    %13.1f   %9.2f%%   %11.2f\n",
		predictive.MeanReserved, 100*predictive.MissRate, predictive.Utilization)
	saving := 100 * (1 - predictive.MeanReserved/static.MeanReserved)
	fmt.Printf("\npredictive provisioning reserves %.0f%% less capacity on average\n\n", saving)

	// Stand-down scheduling: once an attack has run for 10 minutes, how
	// long must mitigation stay up to be 95% sure it is over?
	durModel, err := core.FitDurationModel(features.DurationSeries(attacks))
	if err != nil {
		log.Fatal(err)
	}
	for _, elapsed := range []float64{0, 600, 3600} {
		wait, err := defense.StandDown(durModel, elapsed, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attack running %5.0fs: keep defenses up another %6.0fs (95%% confidence)\n",
			elapsed, wait)
	}
}

func rmseOf(train []float64) float64 {
	// A cheap scale estimate: standard deviation of one-step differences.
	var ss float64
	for i := 1; i < len(train); i++ {
		d := train[i] - train[i-1]
		ss += d * d
	}
	if len(train) < 2 {
		return 1
	}
	return math.Sqrt(ss / float64(len(train)-1))
}

func max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
