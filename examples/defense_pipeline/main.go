// End-to-end defense pipeline: the §V-B early-detection idea plus the
// Figure 5(a) filtering use case composed into one loop. A flood is
// replayed connection by connection; the entropy detector watches the
// source-AS mix of recent traffic, and its first alarm triggers the SDN
// controller to install divert rules from the model's predicted source
// distribution. The replay reports detection latency and how much attack
// traffic reached the victim.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/sdn"
)

func main() {
	log.SetFlags(0)
	world, err := ddos.NewWorld(ddos.Config{Seed: 23, Scale: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	env := world.Env()
	fam := world.Families()[0]
	attacks := env.Dataset.ByFamily(fam)
	nTrain := 8 * len(attacks) / 10
	train, test := attacks[:nTrain], attacks[nTrain:]

	// The model's predicted attack-source distribution (trailing training
	// window) and the actual mix of the replayed flood (a test attack).
	predShares := env.SD.AggregateShares(train[3*len(train)/4:])
	predicted := make([]sdn.PredictedShare, len(predShares))
	for i, s := range predShares {
		predicted[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}
	actualShares := env.SD.Shares(&test[len(test)-1])
	actual := make([]sdn.PredictedShare, len(actualShares))
	for i, s := range actualShares {
		actual[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}

	pipeline, err := sdn.NewPipeline(sdn.PipelineConfig{
		Predicted:        predicted,
		BenignASes:       env.Topo.Stubs,
		ReconfigureDelay: 30 * time.Second,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.Replay(sdn.AttackProfile{
		Sources:  actual,
		Rate:     200,
		Duration: 10 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed a %s flood (200 conns/s for 10 min) against the pipeline:\n\n", fam)
	fmt.Printf("  detected:            %v after %v\n", res.Detected, res.DetectionDelay)
	fmt.Printf("  mitigation active:   %v after onset\n", res.MitigationAt)
	fmt.Printf("  unmitigated window:  %d attack connections reached the victim\n", res.UnmitigatedConns)
	post := res.ScrubbedConns + res.LeakedConns
	if post > 0 {
		fmt.Printf("  after mitigation:    %.1f%% scrubbed (%d leaked)\n",
			100*float64(res.ScrubbedConns)/float64(post), res.LeakedConns)
	}
	fmt.Printf("  benign collateral:   %d of %d connections diverted\n",
		res.BenignDiverted, res.BenignTotal)
}
