// Multistage attack analysis (§III-A2): the paper links consecutive
// attacks on the same target that are 30 seconds to 24 hours apart into
// one multistage attack, a range derived from the CDF of inter-launching
// times. This example reproduces that analysis: it prints the per-family
// inter-launch CDF, the window's coverage, and the resulting multistage
// chain structure, then shows the turnaround-time decomposition (waiting
// time + execution time) for the longest chain.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/astopo"
	"repro/internal/eval"
	"repro/internal/features"
)

func main() {
	log.SetFlags(0)
	world, err := ddos.NewWorld(ddos.Config{Seed: 19, Scale: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	env := world.Env()
	fmt.Printf("dataset: %d attacks\n\n", env.Dataset.Len())

	results, err := eval.RunFeatureAnalysis(env, []string{"DirtJumper", "Pandora"})
	if err != nil {
		log.Fatal(err)
	}
	for _, fa := range results {
		fmt.Printf("%s\n", fa.Family)
		fmt.Printf("  inter-launch CDF (same target): p10=%s p50=%s p90=%s p99=%s\n",
			eval.FormatDuration(fa.InterLaunchQuantiles["p10"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p50"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p90"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p99"]))
		fmt.Printf("  the 30s-24h multistage window captures %.0f%% of gaps\n", 100*fa.WindowCoverage)
		fmt.Printf("  %d chains, mean length %.1f, longest %d, %.0f%% of attacks multistage\n\n",
			fa.Chains, fa.MeanChainLen, fa.LongestChain, 100*fa.MultistageFrac)
	}

	// Find a multistage chain and decompose its turnaround time
	// (waiting + execution, the §III-A2 scheduling view). Targets are
	// visited in address order so the output is deterministic.
	fam := "DirtJumper"
	byTarget := env.Dataset.ByTarget()
	ips := make([]astopo.IPv4, 0, len(byTarget))
	for ip := range byTarget {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		group := byTarget[ip]
		var famGroup = group[:0:0]
		for i := range group {
			if group[i].Family == fam {
				famGroup = append(famGroup, group[i])
			}
		}
		chains := features.MultistageChains(famGroup)
		for _, chain := range chains {
			if len(chain) < 4 {
				continue
			}
			fmt.Printf("multistage attack on %v (%d stages):\n", ip, len(chain))
			fmt.Println("  stage  start                waiting(s)  execution(s)  turnaround(s)")
			for i := range chain {
				wait := 0.0
				if i > 0 {
					wait = chain[i].Start.Sub(chain[i-1].End()).Seconds()
					if wait < 0 {
						wait = 0
					}
				}
				fmt.Printf("  %5d  %s  %10.0f  %12.0f  %13.0f\n",
					i+1, chain[i].Start.Format("2006-01-02 15:04"), wait,
					chain[i].DurationSec, wait+chain[i].DurationSec)
			}
			return
		}
	}
	fmt.Println("no chain with >= 4 stages found at this scale")
}
