// Middlebox traversal reordering (Figure 5b): in normal operation traffic
// crosses the load balancer before the firewall for throughput; under
// attack the order must be reversed so packets cannot be modified to evade
// detection. The example uses the temporal model's launch-hour forecast to
// reorder the chain proactively, and contrasts it with a reactive defense
// that reorders only after detecting the attack.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/sdn"
)

func main() {
	log.SetFlags(0)
	world, err := ddos.NewWorld(ddos.Config{Seed: 17, Scale: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fam := world.Families()[0]
	attacks := world.Dataset().ByFamily(fam)
	nTrain := 8 * len(attacks) / 10
	test := attacks[nTrain:]

	fc, err := world.ForecastNextAttack(fam)
	if err != nil {
		log.Fatal(err)
	}
	predHour := fc.Hour
	fmt.Printf("family %s: predicted launch hour %.1f\n\n", fam, predHour)

	const (
		reconfigure = 30 * time.Second
		detection   = 2 * time.Minute
		slackHours  = 4.0
	)
	var proOK, reOK int
	for i := range test {
		a := &test[i]
		day := a.Start.Truncate(24 * time.Hour)

		pro := sdn.NewChain(reconfigure)
		pro.RequestReorder(day.Add(time.Duration((predHour-slackHours)*float64(time.Hour))),
			[]sdn.MiddleboxKind{sdn.Firewall, sdn.LoadBalancer})
		pro.AdvanceTo(a.Start)
		if pro.FirewallFirst() {
			proOK++
		}

		re := sdn.NewChain(reconfigure)
		re.RequestReorder(a.Start.Add(detection), []sdn.MiddleboxKind{sdn.Firewall, sdn.LoadBalancer})
		re.AdvanceTo(a.Start)
		if re.FirewallFirst() {
			reOK++
		}
	}
	n := len(test)
	fmt.Printf("attacks met with the firewall-first chain already applied:\n")
	fmt.Printf("  proactive (model-scheduled): %3d / %d (%.0f%%)\n", proOK, n, 100*float64(proOK)/float64(n))
	fmt.Printf("  reactive (detect-then-flip): %3d / %d (%.0f%%)\n", reOK, n, 100*float64(reOK)/float64(n))
	fmt.Printf("\nreactive defenses always pay the %.0fs detection + %.0fs reconfiguration window;\n",
		detection.Seconds(), reconfigure.Seconds())
	fmt.Println("the model's hour forecast removes that exposure for most attacks.")
}
