// AS-based filtering (Figure 5a): an SDN controller installs
// classification rules for the attack-source ASes the models predict, so
// matching ingress traffic is diverted to scrubbing. The example compares
// rules derived from the predicted source distribution against a reactive
// snapshot of the last observed attack.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sdn"
)

func main() {
	log.SetFlags(0)
	world, err := ddos.NewWorld(ddos.Config{Seed: 13, Scale: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	env := world.Env()
	fam := world.Families()[0]
	attacks := env.Dataset.ByFamily(fam)
	nTrain := 8 * len(attacks) / 10
	train, test := attacks[:nTrain], attacks[nTrain:]
	fmt.Printf("family %s: %d training, %d test attacks\n\n", fam, len(train), len(test))

	// Predicted source distribution: aggregate shares over the trailing
	// quarter of the training window.
	agg := env.SD.AggregateShares(train[3*len(train)/4:])
	pred := make([]sdn.PredictedShare, len(agg))
	for i, s := range agg {
		pred[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}
	fmt.Println("predicted attack-source ASes:")
	for _, p := range pred {
		fmt.Printf("  AS%-6d %.1f%%\n", p.AS, 100*p.Share)
	}

	controller := sdn.NewController()
	rules, err := controller.InstallFilteringRules(pred, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstalled %d divert rules covering 90%% of predicted mass\n", rules)

	// Replay the test window's attack traffic plus benign background.
	var flows []sdn.Flow
	for i := range test {
		a := &test[i]
		for _, sh := range env.SD.Shares(a) {
			flows = append(flows, sdn.Flow{
				SrcAS:     sh.AS,
				DstIP:     a.TargetIP,
				PPS:       sh.Share * float64(a.Magnitude()) * 100,
				Malicious: true,
			})
		}
	}
	for _, as := range env.Topo.AllASes() {
		flows = append(flows, sdn.Flow{SrcAS: as, PPS: 100})
	}
	m := controller.EvaluateFiltering(flows)
	fmt.Printf("\nreplaying %d flows from the test window:\n", len(flows))
	fmt.Printf("  diverted %.1f%% of attack traffic (collateral: %.1f%% of benign)\n",
		100*m.Recall, 100*m.Collateral)
}
