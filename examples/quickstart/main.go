// Quickstart: generate a small synthetic world, inspect the Table I
// activity levels, and forecast the next attack of the most active botnet
// family with the temporal model.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	// Scale 0.2 generates ~9k verified attacks in about a second.
	world, err := ddos.NewWorld(ddos.Config{Seed: 7, Scale: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d verified attacks across %d families\n\n",
		world.Dataset().Len(), len(world.Families()))

	fmt.Println("activity level of bots (Table I):")
	for _, r := range world.Table1() {
		fmt.Printf("  %-12s %7.2f attacks/day over %3d active days (CV %.2f)\n",
			r.Family, r.AvgPerDay, r.ActiveDays, r.CV)
	}

	fam := world.Families()[0]
	fc, err := world.ForecastNextAttack(fam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntemporal-model forecast for the next %s attack:\n", fam)
	fmt.Printf("  start     %s\n", fc.Start.Format("2006-01-02 15:04"))
	fmt.Printf("  hour      %.1f\n", fc.Hour)
	fmt.Printf("  day       %.1f\n", fc.Day)
	fmt.Printf("  magnitude %.0f bots\n", fc.Magnitude)
}
